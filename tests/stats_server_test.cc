// Tests for the embedded HTTP stats server: ephemeral binds + port files,
// each endpoint's contract, malformed-request handling, concurrent
// scraping (exercised under tsan by ci/check.sh monitor), and the headline
// guarantee that serving monitoring traffic never perturbs sweep outputs.

#include "obs/stats_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/sweep.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "sweep_shard_test_util.h"
#include "util/file_util.h"
#include "util/json.h"
#include "util/net.h"
#include "util/string_util.h"

namespace tdg::obs {
namespace {

std::unique_ptr<StatsServer> StartServer(StatsServer::Options options = {}) {
  auto server = StatsServer::Start(std::move(options));
  EXPECT_TRUE(server.ok()) << server.status();
  return server.ok() ? std::move(server).value() : nullptr;
}

std::string Get(int port, const std::string& path) {
  auto response = util::net::HttpGet(port, path);
  EXPECT_TRUE(response.ok()) << path << ": " << response.status();
  return response.ok() ? response.value() : std::string();
}

TEST(StatsServerTest, BindsEphemeralPortAndWritesPortFile) {
  const std::string port_file =
      test::MakeScratchDir() + "/stats.port";
  StatsServer::Options options;
  options.port = 0;
  options.port_file = port_file;
  auto server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  EXPECT_GT(server->port(), 0);

  auto content = util::ReadFileToString(port_file);
  ASSERT_TRUE(content.ok()) << content.status();
  auto parsed = util::ParseInt(util::Trim(content.value()));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(static_cast<int>(parsed.value()), server->port());
}

TEST(StatsServerTest, HealthzAnswersOk) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  const std::string response = Get(server->port(), "/healthz");
  EXPECT_TRUE(util::StartsWith(response, "HTTP/1.1 200"));
  auto body = util::net::HttpBody(response);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value(), "ok\n");
}

TEST(StatsServerTest, HealthzDegradesOnStaleOrTornHeartbeat) {
  const std::string dir = test::MakeScratchDir();
  const std::string fresh_path = dir + "/fresh.heartbeat";
  const std::string stale_path = dir + "/stale.heartbeat";
  const std::string torn_path = dir + "/torn.heartbeat";

  Heartbeat fresh;
  fresh.name = "healthz-test";
  fresh.shard_cells = 8;
  fresh.cells_done = 1;
  fresh.updated_unix_ms = UnixMillis();
  ASSERT_TRUE(WriteHeartbeat(fresh_path, fresh).ok());

  // A fresh heartbeat plus one that does not exist yet: still healthy (the
  // missing shard may simply not have started).
  {
    StatsServer::Options options;
    options.heartbeat_paths = {fresh_path, dir + "/not-yet.heartbeat"};
    auto server = StartServer(std::move(options));
    ASSERT_NE(server, nullptr);
    const std::string response = Get(server->port(), "/healthz");
    EXPECT_TRUE(util::StartsWith(response, "HTTP/1.1 200")) << response;
  }

  // One shard stopped beating 10 minutes ago: degraded, and the body names
  // the offender.
  Heartbeat stale = fresh;
  stale.updated_unix_ms = UnixMillis() - 10 * 60 * 1000;
  ASSERT_TRUE(WriteHeartbeat(stale_path, stale).ok());
  {
    StatsServer::Options options;
    options.heartbeat_paths = {fresh_path, stale_path};
    auto server = StartServer(std::move(options));
    ASSERT_NE(server, nullptr);
    const std::string response = Get(server->port(), "/healthz");
    EXPECT_TRUE(util::StartsWith(response, "HTTP/1.1 503")) << response;
    auto body = util::net::HttpBody(response);
    ASSERT_TRUE(body.ok());
    EXPECT_TRUE(util::StartsWith(body.value(), "degraded\n")) << *body;
    EXPECT_NE(body->find(stale_path + ": stale"), std::string::npos)
        << *body;
    EXPECT_EQ(body->find(fresh_path), std::string::npos) << *body;
  }

  // A torn heartbeat (crashed host mid-write) also degrades.
  ASSERT_TRUE(util::WriteFileAtomic(torn_path, "{\"schema\": \"tdg.he").ok());
  {
    StatsServer::Options options;
    options.heartbeat_paths = {torn_path};
    auto server = StartServer(std::move(options));
    ASSERT_NE(server, nullptr);
    const std::string response = Get(server->port(), "/healthz");
    EXPECT_TRUE(util::StartsWith(response, "HTTP/1.1 503")) << response;
    auto body = util::net::HttpBody(response);
    ASSERT_TRUE(body.ok());
    EXPECT_NE(body->find(torn_path + ": torn"), std::string::npos) << *body;
  }
}

TEST(StatsServerTest, BlackboxzTailsTheDump) {
  const std::string path = test::MakeScratchDir() + "/server.blackbox";
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorder::Options recorder_options;
  recorder_options.path = path;
  ASSERT_TRUE(recorder.Start(recorder_options).ok());
  for (int i = 0; i < 8; ++i) {
    recorder.Record(BlackboxEventType::kRoundEnd,
                    {static_cast<double>(i), 1.0, static_cast<double>(i)});
  }

  StatsServer::Options options;
  options.blackbox_path = path;
  options.blackbox_tail = 3;
  auto server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);

  // Live tail: the recorder has NOT stopped — /blackboxz reads the file
  // bytes the mapping already pushed to the page cache.
  const std::string response = Get(server->port(), "/blackboxz");
  EXPECT_TRUE(util::StartsWith(response, "HTTP/1.1 200")) << response;
  EXPECT_NE(response.find("application/jsonl"), std::string::npos);
  auto body = util::net::HttpBody(response);
  ASSERT_TRUE(body.ok());
  // Only the newest 3 of 8 events, one JSON object per line, oldest first.
  std::size_t lines = 0;
  for (char c : body.value()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(body->find("\"event\":\"round_end\""), std::string::npos)
      << *body;
  EXPECT_EQ(body->find("\"round\":4,"), std::string::npos) << *body;
  EXPECT_NE(body->find("\"round\":7,"), std::string::npos) << *body;
  recorder.Stop();
}

TEST(StatsServerTest, BlackboxzReportsUnreadableDumpAs503) {
  StatsServer::Options options;
  options.blackbox_path = test::MakeScratchDir() + "/never-written.bin";
  auto server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  const std::string response = Get(server->port(), "/blackboxz");
  EXPECT_TRUE(util::StartsWith(response, "HTTP/1.1 503")) << response;
}

TEST(StatsServerTest, UnknownPathIs404) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(util::StartsWith(Get(server->port(), "/nope"),
                               "HTTP/1.1 404"));
  // Query strings are stripped before routing.
  EXPECT_TRUE(util::StartsWith(Get(server->port(), "/healthz?x=1"),
                               "HTTP/1.1 200"));
}

TEST(StatsServerTest, MalformedRequestIs400AndServerSurvives) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);

  for (const char* garbage :
       {"not an http request\r\n\r\n", "GET\r\n\r\n",
        "GET /healthz SMTP/1.0\r\n\r\n", "GET noslash HTTP/1.1\r\n\r\n"}) {
    auto client = util::net::ConnectLoopback(server->port());
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(client->WriteAll(garbage).ok());
    auto response = client->ReadToEof(64 * 1024, /*timeout_ms=*/5000);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(util::StartsWith(response.value(), "HTTP/1.1 400"))
        << "request: " << garbage << "\nresponse: " << response.value();
  }
  // A well-formed request still works after the garbage ones.
  EXPECT_TRUE(util::StartsWith(Get(server->port(), "/healthz"),
                               "HTTP/1.1 200"));
}

TEST(StatsServerTest, NonGetMethodIs405) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  auto client = util::net::ConnectLoopback(server->port());
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(
      client->WriteAll("POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  auto response = client->ReadToEof(64 * 1024, /*timeout_ms=*/5000);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(util::StartsWith(response.value(), "HTTP/1.1 405"));
}

TEST(StatsServerTest, MetricsServesPrometheusExposition) {
  MetricsRegistry::Global()
      .GetCounter("stats_server_test/scrapes")
      .Add(3);
  InstallBuildInfoMetrics();
  auto server = StartServer();
  ASSERT_NE(server, nullptr);

  const std::string response = Get(server->port(), "/metrics");
  EXPECT_TRUE(util::StartsWith(response, "HTTP/1.1 200"));
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  auto body = util::net::HttpBody(response);
  ASSERT_TRUE(body.ok());
  EXPECT_NE(
      body->find("tdg_stats_server_test_scrapes_total"),
      std::string::npos);
  EXPECT_NE(body->find("tdg_build_info{"), std::string::npos);
  // Every scrape refreshes the process uptime gauge.
  EXPECT_NE(body->find("tdg_process_uptime_seconds"), std::string::npos);
}

TEST(StatsServerTest, StatuszServesManifestAndUptime) {
  StatsServer::Options options;
  options.manifest = RunManifest::Capture(/*seed=*/99);
  auto server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);

  auto body = util::net::HttpBody(Get(server->port(), "/statusz"));
  ASSERT_TRUE(body.ok());
  auto json = util::JsonValue::Parse(body.value());
  ASSERT_TRUE(json.ok()) << json.status();
  auto manifest = json->GetField("manifest");
  ASSERT_TRUE(manifest.ok());
  auto roundtrip = RunManifest::FromJson(manifest.value());
  ASSERT_TRUE(roundtrip.ok()) << roundtrip.status();
  EXPECT_EQ(roundtrip->seed, 99u);
  EXPECT_GE(json->GetField("uptime_seconds")->AsNumber(), 0.0);
  EXPECT_EQ(static_cast<int>(json->GetField("port")->AsNumber()),
            server->port());
}

TEST(StatsServerTest, ProgresszServesTrackerSnapshot) {
  ProgressTracker tracker;
  tracker.SetEnabled(true);
  tracker.BeginRun("progressz-test", 8, 2);
  tracker.RecordCell("cell-2", 1000.0);

  StatsServer::Options options;
  options.progress = &tracker;
  auto server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);

  auto body = util::net::HttpBody(Get(server->port(), "/progressz"));
  ASSERT_TRUE(body.ok());
  auto json = util::JsonValue::Parse(body.value());
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_EQ(json->GetField("name")->AsString(), "progressz-test");
  EXPECT_EQ(
      static_cast<long long>(json->GetField("cells_total")->AsNumber()), 8);
  EXPECT_EQ(
      static_cast<long long>(json->GetField("cells_done")->AsNumber()), 3);
  EXPECT_GE(json->GetField("eta_seconds")->AsNumber(), 0.0);
  EXPECT_EQ(json->GetField("current_cell")->AsString(), "cell-2");
}

TEST(StatsServerTest, ConcurrentScrapesAllSucceed) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 8;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([port = server->port(), &ok_count] {
      const char* paths[] = {"/healthz", "/metrics", "/statusz",
                             "/progressz"};
      for (int i = 0; i < kRequestsPerThread; ++i) {
        auto response = util::net::HttpGet(port, paths[i % 4]);
        if (response.ok() &&
            util::StartsWith(response.value(), "HTTP/1.1 200")) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& scraper : scrapers) scraper.join();
  EXPECT_EQ(ok_count.load(), kThreads * kRequestsPerThread);
  EXPECT_GE(server->requests_served(), kThreads * kRequestsPerThread);
}

TEST(StatsServerTest, StopIsIdempotentAndPortCloses) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  const int port = server->port();
  server->Stop();
  server->Stop();  // second call is a no-op
  auto client = util::net::ConnectLoopback(port, /*timeout_ms=*/500);
  EXPECT_FALSE(client.ok());
}

// Satellite of the obs-off CI config: with TDG_OBS_DISABLED the macros
// compile to nothing while the explicit APIs (EventLog::Global().Append,
// FlightRecorder::Record, every HTTP endpoint) keep working — flushes and
// scrapes degrade to cheap no-ops or smaller outputs, never crashes. The
// same test runs in normal builds, where it additionally pins the macro
// counts, so a skew between the two paths fails exactly one config.
TEST(StatsServerTest, ObsDisabledBuildDegradesCleanly) {
  const std::string dir = test::MakeScratchDir();

  // EventLog: macro + explicit append + flush/close.
  EventLog& log = EventLog::Global();
  ASSERT_TRUE(log.Open(dir + "/events.jsonl").ok());
  TDG_OBS_EVENT("obs_off_test/macro", (util::JsonValue::Object{}));
  log.Emit("obs_off_test/explicit");
  log.Flush();
  const long long events = log.events_written();
  log.Close();
  log.Close();  // idempotent
  log.Flush();  // no-op when closed

  // Flight recorder: macro + explicit record.
  const std::string blackbox = dir + "/events.blackbox";
  FlightRecorder& recorder = FlightRecorder::Global();
  FlightRecorder::Options recorder_options;
  recorder_options.path = blackbox;
  ASSERT_TRUE(recorder.Start(recorder_options).ok());
  TDG_BLACKBOX(BlackboxEventType::kNote, 1.0);
  recorder.Record(BlackboxEventType::kNote, {2.0});

  // Endpoints answer while both planes are live.
  StatsServer::Options options;
  options.blackbox_path = blackbox;
  auto server = StartServer(std::move(options));
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(util::StartsWith(Get(server->port(), "/healthz"),
                               "HTTP/1.1 200"));
  EXPECT_TRUE(util::StartsWith(Get(server->port(), "/metrics"),
                               "HTTP/1.1 200"));
  EXPECT_TRUE(util::StartsWith(Get(server->port(), "/blackboxz"),
                               "HTTP/1.1 200"));
  server->Stop();
  recorder.Stop();

  auto dump = ReadBlackbox(blackbox);
  ASSERT_TRUE(dump.ok()) << dump.status();
#if defined(TDG_OBS_DISABLED)
  EXPECT_EQ(events, 1);  // only the explicit append
  ASSERT_EQ(dump->events.size(), 1u);
  EXPECT_DOUBLE_EQ(dump->events[0].values[0], 2.0);
#else
  EXPECT_EQ(events, 2);
  ASSERT_EQ(dump->events.size(), 2u);
  EXPECT_DOUBLE_EQ(dump->events[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(dump->events[1].values[0], 2.0);
#endif
}

TEST(StatsServerTest, SweepOutputsAreByteIdenticalWithServerOn) {
  // The monitoring plane's headline contract: a live server being scraped
  // mid-sweep (tracker enabled, /metrics + /progressz polled from another
  // thread) must not change a single output byte.
  test::MetricsOffGuard metrics_off;
  const exp::SweepConfig config = test::TinyConfig();

  auto baseline = exp::RunSweep(config);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  const bool tracker_was_enabled = ProgressTracker::Global().enabled();
  ProgressTracker::Global().SetEnabled(true);
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  std::atomic<bool> stop_scraping{false};
  std::thread scraper([port = server->port(), &stop_scraping] {
    while (!stop_scraping.load(std::memory_order_relaxed)) {
      (void)util::net::HttpGet(port, "/metrics");
      (void)util::net::HttpGet(port, "/progressz");
    }
  });

  auto monitored = exp::RunSweep(config);

  stop_scraping.store(true, std::memory_order_relaxed);
  scraper.join();
  server->Stop();
  ProgressTracker::Global().SetEnabled(tracker_was_enabled);

  ASSERT_TRUE(monitored.ok()) << monitored.status();
  EXPECT_GT(server->requests_served(), 0);
  EXPECT_EQ(test::CsvBytes(baseline.value()),
            test::CsvBytes(monitored.value()));
  EXPECT_EQ(test::JsonBytes(baseline.value()),
            test::JsonBytes(monitored.value()));
}

}  // namespace
}  // namespace tdg::obs
