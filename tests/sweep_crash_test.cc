// Crash-injection integration test (the fault-injection satellite of the
// crash-safe sweep layer): a real child process (tdg_sweep_shard_child) is
// killed mid-sweep by the TDG_TEST_CRASH_AFTER_CELLS hook at several cut
// points, resumed — possibly crashing again — until its shard completes,
// and the merged shard checkpoints must be byte-identical to an
// uninterrupted monolithic run. Repeated across 1, 2 and 8 worker threads:
// the determinism contract holds through crashes, resumes, sharding and
// scheduling.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "exp/sweep_shard.h"
#include "sweep_shard_test_util.h"

#ifndef TDG_SWEEP_SHARD_CHILD_BIN
#error "TDG_SWEEP_SHARD_CHILD_BIN must be defined by tests/CMakeLists.txt"
#endif

namespace tdg::exp {
namespace {

using test::CsvBytes;
using test::JsonBytes;
using test::MakeScratchDir;
using test::MetricsOffGuard;
using test::TinyConfig;

// Runs the child shard binary; `crash_after_cells < 0` disables the fault
// hook. Returns the child's exit code (or -1 on abnormal termination).
int RunChild(const std::string& config_path,
             const std::string& checkpoint_path, int shard_index,
             int shard_count, int threads, bool resume,
             int crash_after_cells) {
  std::string command;
  if (crash_after_cells >= 0) {
    command += "TDG_TEST_CRASH_AFTER_CELLS=" +
               std::to_string(crash_after_cells) + " ";
  }
  command += std::string("'") + TDG_SWEEP_SHARD_CHILD_BIN + "'";
  command += " --config='" + config_path + "'";
  command += " --checkpoint='" + checkpoint_path + "'";
  command += " --shard_index=" + std::to_string(shard_index);
  command += " --shard_count=" + std::to_string(shard_count);
  command += " --threads=" + std::to_string(threads);
  if (resume) command += " --resume";
  command += " >/dev/null";
  const int status = std::system(command.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

TEST(SweepCrashTest, InterruptedShardsResumeAndMergeByteIdentical) {
#if !defined(TDG_TEST_HOOKS)
  GTEST_SKIP() << "fault-injection hooks compiled out (TDG_TEST_HOOKS=OFF)";
#endif
  MetricsOffGuard metrics_off;
  SweepConfig config = TinyConfig(1);

  // The reference: one uninterrupted in-process run (16 cells).
  auto reference = RunSweep(config);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string reference_csv = CsvBytes(reference.value());
  const std::string reference_json = JsonBytes(reference.value());

  constexpr int kShardCount = 2;  // 8 cells per shard
  // Kill each shard at several cut points before letting it finish: shard
  // 0 dies after 1 cell, again after 3 more, then completes; shard 1 dies
  // after 5, then completes. Exercises first-cell, mid-run and
  // nearly-done interruptions.
  const std::vector<std::vector<int>> crash_schedules = {{1, 3}, {5}};

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::string dir = MakeScratchDir();
    const std::string config_path = dir + "/sweep.cfg";
    {
      std::ofstream out(config_path);
      ASSERT_TRUE(out.good());
      out << config.ToText();
    }

    std::vector<std::string> checkpoints;
    for (int shard = 0; shard < kShardCount; ++shard) {
      SCOPED_TRACE("shard=" + std::to_string(shard));
      const std::string checkpoint =
          dir + "/shard" + std::to_string(shard) + ".ckpt";
      checkpoints.push_back(checkpoint);

      bool resume = false;
      for (int crash_after : crash_schedules[shard]) {
        ASSERT_EQ(RunChild(config_path, checkpoint, shard, kShardCount,
                           threads, resume, crash_after),
                  kCrashHookExitCode)
            << "the fault hook should have killed the child";
        resume = true;
      }
      ASSERT_EQ(RunChild(config_path, checkpoint, shard, kShardCount,
                         threads, resume, /*crash_after_cells=*/-1),
                0)
          << "final resume of shard " << shard << " failed";
    }

    auto merged = MergeSweepCheckpoints(checkpoints);
    ASSERT_TRUE(merged.ok()) << merged.status();
    EXPECT_EQ(CsvBytes(merged.value()), reference_csv);
    EXPECT_EQ(JsonBytes(merged.value()), reference_json);
  }
}

TEST(SweepCrashTest, MergeRefusesCheckpointStillMissingCells) {
#if !defined(TDG_TEST_HOOKS)
  GTEST_SKIP() << "fault-injection hooks compiled out (TDG_TEST_HOOKS=OFF)";
#endif
  MetricsOffGuard metrics_off;
  const std::string dir = MakeScratchDir();
  const std::string config_path = dir + "/sweep.cfg";
  {
    std::ofstream out(config_path);
    ASSERT_TRUE(out.good());
    out << TinyConfig(1).ToText();
  }
  const std::string checkpoint = dir + "/shard0.ckpt";
  // Single shard, killed after 2 of 16 cells and never resumed.
  ASSERT_EQ(RunChild(config_path, checkpoint, 0, 1, /*threads=*/1,
                     /*resume=*/false, /*crash_after_cells=*/2),
            kCrashHookExitCode);
  auto merged = MergeSweepCheckpoints({checkpoint});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(),
            util::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tdg::exp
