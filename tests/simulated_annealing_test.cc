#include "baselines/simulated_annealing.h"

#include <gtest/gtest.h>

#include "core/dygroups.h"
#include "random/distributions.h"

namespace tdg::baselines {
namespace {

TEST(SimulatedAnnealingTest, ProducesValidGroupings) {
  random::Rng rng(1);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 20);
  LinearGain gain(0.5);
  SimulatedAnnealingPolicy policy(InteractionMode::kStar, gain, 7);
  auto grouping = policy.FormGroups(skills, 4);
  ASSERT_TRUE(grouping.ok());
  EXPECT_TRUE(grouping->ValidateEquiSized(20).ok());
  EXPECT_GT(policy.last_evaluations(), 0);
}

TEST(SimulatedAnnealingTest, ConvergesToRoundOptimalGainOnSmallInstances) {
  // With a generous iteration budget, SA should reach the closed-form
  // round optimum DyGroups computes directly (Theorems 1 / 4).
  random::Rng rng(2);
  for (InteractionMode mode :
       {InteractionMode::kStar, InteractionMode::kClique}) {
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kUniform, 12);
    for (double& s : skills) s += 1e-6;
    LinearGain gain(0.5);
    SimulatedAnnealingOptions options;
    options.iterations = 20000;
    SimulatedAnnealingPolicy sa(mode, gain, 11, options);
    auto sa_grouping = sa.FormGroups(skills, 3);
    ASSERT_TRUE(sa_grouping.ok());
    double sa_gain =
        EvaluateRoundGain(mode, sa_grouping.value(), gain, skills).value();

    auto dygroups = (mode == InteractionMode::kStar)
                        ? DyGroupsStarLocal(skills, 3)
                        : DyGroupsCliqueLocal(skills, 3);
    ASSERT_TRUE(dygroups.ok());
    double optimal =
        EvaluateRoundGain(mode, dygroups.value(), gain, skills).value();
    EXPECT_NEAR(sa_gain, optimal, 0.01 * optimal)
        << InteractionModeName(mode);
    EXPECT_LE(sa_gain, optimal + 1e-9);
  }
}

TEST(SimulatedAnnealingTest, MoreIterationsNeverHurtQualityMuch) {
  random::Rng rng(3);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 24);
  LinearGain gain(0.5);
  SimulatedAnnealingOptions few;
  few.iterations = 50;
  SimulatedAnnealingOptions many;
  many.iterations = 5000;
  SimulatedAnnealingPolicy sa_few(InteractionMode::kStar, gain, 13, few);
  SimulatedAnnealingPolicy sa_many(InteractionMode::kStar, gain, 13, many);
  double gain_few =
      EvaluateRoundGain(InteractionMode::kStar,
                        sa_few.FormGroups(skills, 4).value(), gain, skills)
          .value();
  double gain_many =
      EvaluateRoundGain(InteractionMode::kStar,
                        sa_many.FormGroups(skills, 4).value(), gain, skills)
          .value();
  EXPECT_GE(gain_many, gain_few - 1e-9);
}

TEST(SimulatedAnnealingTest, DeterministicGivenSeed) {
  random::Rng rng(4);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 16);
  LinearGain gain(0.5);
  SimulatedAnnealingPolicy a(InteractionMode::kStar, gain, 99);
  SimulatedAnnealingPolicy b(InteractionMode::kStar, gain, 99);
  EXPECT_EQ(a.FormGroups(skills, 4)->CanonicalKey(),
            b.FormGroups(skills, 4)->CanonicalKey());
}

TEST(SimulatedAnnealingTest, RejectsBadArguments) {
  LinearGain gain(0.5);
  SimulatedAnnealingPolicy policy(InteractionMode::kStar, gain, 1);
  EXPECT_FALSE(policy.FormGroups({1.0, 2.0, 3.0}, 2).ok());
  EXPECT_FALSE(policy.FormGroups({}, 1).ok());
}

TEST(SimulatedAnnealingTest, SingleGroupIsTrivial) {
  LinearGain gain(0.5);
  SimulatedAnnealingPolicy policy(InteractionMode::kStar, gain, 1);
  auto grouping = policy.FormGroups({1.0, 2.0, 3.0}, 1);
  ASSERT_TRUE(grouping.ok());
  EXPECT_EQ(grouping->num_groups(), 1);
}

}  // namespace
}  // namespace tdg::baselines
