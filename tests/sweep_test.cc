#include "exp/sweep.h"

#include <gtest/gtest.h>

#include "exp/sweep_config.h"

namespace tdg::exp {
namespace {

SweepConfig SmallConfig() {
  SweepConfig config;
  config.name = "unit";
  config.policies = {"DyGroups-Star", "Random-Assignment"};
  config.n_values = {40};
  config.k_values = {4};
  config.alpha_values = {3};
  config.r_values = {0.5};
  config.runs = 3;
  config.seed = 7;
  return config;
}

TEST(SweepConfigTest, ValidationCatchesBadGrids) {
  SweepConfig config = SmallConfig();
  EXPECT_TRUE(config.Validate().ok());
  config.k_values = {7};  // 40 % 7 != 0
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.r_values = {1.5};
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.runs = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.policies = {"No-Such-Policy"};
  EXPECT_FALSE(config.Validate().ok());
}

TEST(SweepConfigTest, TextRoundTrip) {
  SweepConfig config = SmallConfig();
  config.modes = {InteractionMode::kStar, InteractionMode::kClique};
  config.distributions = {random::SkillDistribution::kZipf};
  auto reparsed = SweepConfig::FromText(config.ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->name, config.name);
  EXPECT_EQ(reparsed->policies, config.policies);
  EXPECT_EQ(reparsed->n_values, config.n_values);
  EXPECT_EQ(reparsed->modes, config.modes);
  EXPECT_EQ(reparsed->distributions, config.distributions);
  EXPECT_EQ(reparsed->runs, config.runs);
  EXPECT_EQ(reparsed->seed, config.seed);
}

TEST(SweepConfigTest, ParsesCommentsAndRejectsUnknownKeys) {
  auto config = SweepConfig::FromText(
      "# a comment\n"
      "name = from-text\n"
      "n = 20, 40\n"
      "k = 2\n"
      "policies = DyGroups-Star\n");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->name, "from-text");
  EXPECT_EQ(config->n_values, (std::vector<int>{20, 40}));

  EXPECT_FALSE(SweepConfig::FromText("frobnicate = 3\n").ok());
  EXPECT_FALSE(SweepConfig::FromText("just a line\n").ok());
  EXPECT_FALSE(SweepConfig::FromText("mode = ring\n").ok());
  EXPECT_FALSE(SweepConfig::FromFile("/nonexistent/sweep.cfg").ok());
}

TEST(GridPointsTest, CartesianProductInDeterministicOrder) {
  SweepConfig config = SmallConfig();
  config.n_values = {20, 40};
  config.r_values = {0.1, 0.9};
  std::vector<SweepPoint> points = GridPoints(config);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].n, 20);
  EXPECT_DOUBLE_EQ(points[0].r, 0.1);
  EXPECT_DOUBLE_EQ(points[1].r, 0.9);
  EXPECT_EQ(points[2].n, 40);
  EXPECT_EQ(config.NumPoints(), 4);
}

TEST(RunSweepTest, ProducesOneCellPerPointPolicyPair) {
  SweepConfig config = SmallConfig();
  auto result = RunSweep(config);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->cells.size(), 2u);  // 1 point x 2 policies
  for (const SweepCell& cell : result->cells) {
    EXPECT_EQ(cell.runs, 3);
    EXPECT_GT(cell.mean_gain, 0.0);
    EXPECT_GE(cell.stderr_gain, 0.0);
    EXPECT_GT(cell.mean_micros, 0.0);
  }
  // DyGroups-Star >= Random on its own mode.
  EXPECT_GE(result->cells[0].mean_gain, result->cells[1].mean_gain);
}

TEST(RunSweepTest, DeterministicAcrossThreadCounts) {
  SweepConfig config = SmallConfig();
  config.n_values = {20, 40};
  config.r_values = {0.3, 0.7};
  config.threads = 1;
  auto serial = RunSweep(config);
  config.threads = 4;
  auto parallel = RunSweep(config);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_EQ(serial->cells.size(), parallel->cells.size());
  for (size_t i = 0; i < serial->cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial->cells[i].mean_gain,
                     parallel->cells[i].mean_gain)
        << i;
    EXPECT_EQ(serial->cells[i].policy, parallel->cells[i].policy);
  }
}

TEST(RunSweepTest, ExportsTableCsvAndJson) {
  SweepConfig config = SmallConfig();
  auto result = RunSweep(config);
  ASSERT_TRUE(result.ok());

  std::string table = result->ToTable();
  EXPECT_NE(table.find("DyGroups-Star"), std::string::npos);
  EXPECT_NE(table.find("n=40"), std::string::npos);

  util::CsvDocument csv = result->ToCsv();
  EXPECT_EQ(csv.num_rows(), result->cells.size());
  EXPECT_TRUE(csv.ColumnIndex("mean_gain").ok());

  util::JsonValue json = result->ToJson();
  EXPECT_EQ(json.GetField("name")->AsString(), "unit");
  EXPECT_EQ(json.GetField("cells")->AsArray().size(),
            result->cells.size());
  // The JSON serialization parses back.
  auto reparsed = util::JsonValue::Parse(json.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value(), json);
}

TEST(RunSweepTest, EmptyPolicyListUsesAllRegistered) {
  SweepConfig config = SmallConfig();
  config.policies.clear();
  config.runs = 1;
  auto result = RunSweep(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cells.size(), 6u);  // all registered policies
}

}  // namespace
}  // namespace tdg::exp
