// Deterministic fuzzing of the cohort server's HTTP front end with the
// shared mutation harness (fuzz_mutate_test_util.h, the parser_fuzz_test
// engine). A live CohortServer receives hundreds of mutated requests over
// real sockets; the properties are
//
//   * the server never crashes and never trips a sanitizer,
//   * every connection gets a well-formed HTTP/1.1 response with a status
//     code in 100..599 (garbage in, clean 4xx/5xx out — never a hang, never
//     a silently dropped connection),
//   * after the barrage the server still serves valid traffic.
//
// Seeds are fixed; the mutant corpus is identical on every run.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fuzz_mutate_test_util.h"
#include "random/rng.h"
#include "serve/cohort.h"
#include "serve/cohort_manager.h"
#include "serve/cohort_server.h"
#include "util/net.h"

namespace tdg::serve {
namespace {

/// One fuzz exchange: connect, write the (possibly garbage) wire bytes,
/// read whatever the server sends until it closes. Returns the raw
/// response, empty on connect failure.
std::string Exchange(int port, const std::string& wire) {
  auto client = util::net::ConnectLoopback(port, /*timeout_ms=*/2000);
  if (!client.ok()) {
    ADD_FAILURE() << "connect failed: " << client.status();
    return "";
  }
  // The write may fail mid-stream if the server already rejected and
  // closed (e.g. an oversized mutant) — that is a valid server behavior,
  // the response is still on the wire.
  (void)client->WriteAll(wire);
  auto response = client->ReadToEof(/*max_bytes=*/1 << 20,
                                    /*timeout_ms=*/5000);
  return response.ok() ? *response : "";
}

std::vector<std::string> SeedCorpus() {
  const std::string enroll_body =
      "{\"id\":\"fz\",\"config\":{\"group_size\":2,\"policy\":\"star\"},"
      "\"participants\":[{\"key\":\"a\",\"skill\":1.0},"
      "{\"key\":\"b\",\"skill\":2.0},{\"key\":\"c\",\"skill\":3.0},"
      "{\"key\":\"d\",\"skill\":4.0}]}";
  auto with_body = [](const std::string& head, const std::string& body) {
    return head + "Content-Length: " + std::to_string(body.size()) +
           "\r\n\r\n" + body;
  };
  return {
      "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n",
      "GET /metrics HTTP/1.1\r\n\r\n",
      "GET /statusz HTTP/1.1\r\n\r\n",
      "GET /cohorts HTTP/1.1\r\n\r\n",
      "GET /cohorts/fz HTTP/1.1\r\n\r\n",
      "GET /cohorts/fz/rounds/0 HTTP/1.1\r\n\r\n",
      with_body("POST /cohorts HTTP/1.1\r\n", enroll_body),
      with_body("POST /cohorts/fz/advance HTTP/1.1\r\n", "{}"),
      with_body("POST /cohorts/fz/join HTTP/1.1\r\n",
                "{\"key\":\"e\",\"skill\":1.5}"),
      with_body("POST /cohorts/fz/leave HTTP/1.1\r\n", "{\"key\":\"e\"}"),
  };
}

TEST(ServeHttpFuzzTest, MutatedRequestsAlwaysGetWellFormedResponses) {
  auto manager = CohortManager::Open({});
  ASSERT_TRUE(manager.ok()) << manager.status();

  CohortServer::Options options;
  options.num_workers = 2;
  // Tight read bounds: mutants that lose their head terminator fail the
  // total deadline quickly instead of stalling the run, and oversized
  // mutants trip the byte limits.
  options.limits.max_head_bytes = 4096;
  options.limits.max_body_bytes = 4096;
  options.limits.read_timeout_ms = 75;
  auto server = CohortServer::Start(manager->get(), std::move(options));
  ASSERT_TRUE(server.ok()) << server.status();
  const int port = (*server)->port();

  const std::vector<std::string> corpus = SeedCorpus();
  // Prime real state so path-preserving mutants reach live handlers.
  {
    std::string response = Exchange(port, corpus[6]);  // enroll "fz"
    auto code = util::net::HttpStatusCode(response);
    ASSERT_TRUE(code.ok()) << response;
    ASSERT_EQ(*code, 201) << response;
  }

  random::Rng rng(0xF722EDull);
  std::string donor = corpus[0];
  int rejected = 0;
  const int kRounds = 250;
  for (int round = 0; round < kRounds; ++round) {
    const std::string& seed = corpus[rng.NextBounded(corpus.size())];
    std::string mutated = test::Mutate(rng, seed, donor);
    std::string response = Exchange(port, mutated);
    // The one hard contract: whatever went in, a well-formed HTTP/1.1
    // status line came out.
    ASSERT_FALSE(response.empty())
        << "server dropped the connection silently, round " << round;
    auto code = util::net::HttpStatusCode(response);
    ASSERT_TRUE(code.ok()) << "round " << round << " malformed response: "
                           << response.substr(0, 120);
    ASSERT_GE(*code, 100) << response.substr(0, 120);
    ASSERT_LE(*code, 599) << response.substr(0, 120);
    if (*code >= 400) ++rejected;
    donor = std::move(mutated);
  }
  // The corpus is not degenerate: mutation actually breaks requests.
  EXPECT_GT(rejected, 0);
  EXPECT_LT(rejected, kRounds) << "every mutant failed — seeds broken?";

  // The server survived the barrage and still serves valid traffic with
  // intact state.
  std::string health = Exchange(port, corpus[0]);
  auto health_code = util::net::HttpStatusCode(health);
  ASSERT_TRUE(health_code.ok()) << health;
  EXPECT_EQ(*health_code, 200) << health;
  std::string summary = Exchange(port, corpus[4]);
  auto summary_code = util::net::HttpStatusCode(summary);
  ASSERT_TRUE(summary_code.ok()) << summary;
  EXPECT_EQ(*summary_code, 200) << summary;
  // requests_served is bumped after the response socket closes, so the last
  // client can observe EOF a beat before the counter moves — poll briefly.
  const int64_t expected = kRounds + 3;
  for (int i = 0; i < 200 && (*server)->requests_served() < expected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE((*server)->requests_served(), expected);
  (*server)->Stop();
}

}  // namespace
}  // namespace tdg::serve
