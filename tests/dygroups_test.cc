#include "core/dygroups.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "random/distributions.h"

namespace tdg {
namespace {

// TOY EXAMPLE skills (paper §II), indexed so participant i has skill
// (i+1)/10.
SkillVector ToySkills() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

// Skill multiset of each group under `grouping`.
std::vector<std::vector<double>> GroupSkills(const Grouping& grouping,
                                             const SkillVector& skills) {
  std::vector<std::vector<double>> out;
  for (const auto& group : grouping.groups) {
    std::vector<double> values;
    for (int id : group) values.push_back(skills[id]);
    std::sort(values.begin(), values.end(), std::greater<>());
    out.push_back(values);
  }
  return out;
}

// Paper §III-A round 1 of DyGroups-Star on the toy example:
// [0.9,0.6,0.5], [0.8,0.4,0.3], [0.7,0.2,0.1].
TEST(DyGroupsStarLocalTest, ToyExampleRoundOneGroups) {
  auto grouping = DyGroupsStarLocal(ToySkills(), 3);
  ASSERT_TRUE(grouping.ok());
  auto groups = GroupSkills(grouping.value(), ToySkills());
  EXPECT_EQ(groups[0], (std::vector<double>{0.9, 0.6, 0.5}));
  EXPECT_EQ(groups[1], (std::vector<double>{0.8, 0.4, 0.3}));
  EXPECT_EQ(groups[2], (std::vector<double>{0.7, 0.2, 0.1}));
}

// Paper §III-B round 1 of DyGroups-Clique on the toy example:
// [0.9,0.6,0.3], [0.8,0.5,0.2], [0.7,0.4,0.1].
TEST(DyGroupsCliqueLocalTest, ToyExampleRoundOneGroups) {
  auto grouping = DyGroupsCliqueLocal(ToySkills(), 3);
  ASSERT_TRUE(grouping.ok());
  auto groups = GroupSkills(grouping.value(), ToySkills());
  EXPECT_EQ(groups[0], (std::vector<double>{0.9, 0.6, 0.3}));
  EXPECT_EQ(groups[1], (std::vector<double>{0.8, 0.5, 0.2}));
  EXPECT_EQ(groups[2], (std::vector<double>{0.7, 0.4, 0.1}));
}

TEST(DyGroupsStarLocalTest, TopKAreTeachersOfDistinctGroups) {
  random::Rng rng(3);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 20);
  auto grouping = DyGroupsStarLocal(skills, 4);
  ASSERT_TRUE(grouping.ok());
  ASSERT_TRUE(grouping->ValidateEquiSized(20).ok());

  std::vector<int> sorted = SortedByskillDescending(skills);
  // Each of the top-4 ids must be the maximum of its own group.
  for (int rank = 0; rank < 4; ++rank) {
    int teacher = sorted[rank];
    bool found = false;
    for (const auto& group : grouping->groups) {
      if (std::find(group.begin(), group.end(), teacher) == group.end()) {
        continue;
      }
      found = true;
      for (int member : group) {
        EXPECT_LE(skills[member], skills[teacher]);
      }
    }
    EXPECT_TRUE(found);
  }
}

// The dominance property of Algorithm 3: the j-th strongest member of group
// i is at least the j-th strongest member of group i+1.
TEST(DyGroupsCliqueLocalTest, DominanceProperty) {
  random::Rng rng(5);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 24);
  auto grouping = DyGroupsCliqueLocal(skills, 4);
  ASSERT_TRUE(grouping.ok());
  auto groups = GroupSkills(grouping.value(), skills);
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    for (size_t j = 0; j < groups[g].size(); ++j) {
      EXPECT_GE(groups[g][j], groups[g + 1][j]);
    }
  }
}

TEST(DyGroupsLocalTest, RejectsInvalidArguments) {
  SkillVector skills = {1.0, 2.0, 3.0};
  EXPECT_FALSE(DyGroupsStarLocal(skills, 2).ok());   // 3 % 2 != 0
  EXPECT_FALSE(DyGroupsStarLocal(skills, 0).ok());
  EXPECT_FALSE(DyGroupsStarLocal(skills, 4).ok());   // k > n
  EXPECT_FALSE(DyGroupsStarLocal({}, 1).ok());
  EXPECT_FALSE(DyGroupsStarLocal({1.0, -2.0}, 1).ok());
  EXPECT_FALSE(DyGroupsCliqueLocal(skills, 2).ok());
}

TEST(DyGroupsLocalTest, SingletonGroupsWhenKEqualsN) {
  SkillVector skills = {3.0, 1.0, 2.0};
  auto grouping = DyGroupsStarLocal(skills, 3);
  ASSERT_TRUE(grouping.ok());
  EXPECT_TRUE(grouping->ValidateEquiSized(3).ok());
  for (const auto& group : grouping->groups) {
    EXPECT_EQ(group.size(), 1u);
  }
}

TEST(DyGroupsLocalTest, OneGroupContainsEveryone) {
  SkillVector skills = {3.0, 1.0, 2.0};
  for (auto* local : {&DyGroupsStarLocal, &DyGroupsCliqueLocal}) {
    auto grouping = (*local)(skills, 1);
    ASSERT_TRUE(grouping.ok());
    EXPECT_EQ(grouping->num_groups(), 1);
    EXPECT_EQ(grouping->groups[0].size(), 3u);
  }
}

TEST(MakeDyGroupsPolicyTest, ReturnsMatchingPolicy) {
  auto star = MakeDyGroupsPolicy(InteractionMode::kStar);
  auto clique = MakeDyGroupsPolicy(InteractionMode::kClique);
  ASSERT_NE(star, nullptr);
  ASSERT_NE(clique, nullptr);
  EXPECT_EQ(star->name(), "DyGroups-Star");
  EXPECT_EQ(clique->name(), "DyGroups-Clique");
}

}  // namespace
}  // namespace tdg
