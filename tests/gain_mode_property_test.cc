// Parameterized invariants across (gain family x interaction mode):
// everything the learning model promises must hold for every combination,
// including the non-linear concave extensions.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/dygroups.h"
#include "core/interaction.h"
#include "core/process.h"
#include "random/distributions.h"

namespace tdg {
namespace {

struct GainModeCase {
  std::string gain_name;  // constructor key
  InteractionMode mode;

  std::string Name() const {
    std::string name = gain_name + "_" +
                       std::string(InteractionModeName(mode));
    for (char& c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    return name;
  }
};

std::unique_ptr<LearningGainFunction> MakeGain(const std::string& key) {
  if (key == "linear") return std::make_unique<LinearGain>(0.5);
  if (key == "linear-low") return std::make_unique<LinearGain>(0.1);
  if (key == "power") return std::make_unique<PowerGain>(0.5, 0.5);
  if (key == "log") return std::make_unique<LogGain>(0.8);
  if (key == "satexp") {
    return std::make_unique<SaturatingExpGain>(0.9, 2.0);
  }
  return nullptr;
}

class GainModePropertyTest : public testing::TestWithParam<GainModeCase> {
 protected:
  SkillVector MakeSkills(uint64_t seed, int n) const {
    random::Rng rng(seed);
    SkillVector skills = random::GenerateSkills(
        rng, random::SkillDistribution::kLogNormal, n);
    return skills;
  }
};

TEST_P(GainModePropertyTest, TeacherUnalteredAndSkillsMonotone) {
  auto gain = MakeGain(GetParam().gain_name);
  ASSERT_NE(gain, nullptr);
  SkillVector skills = MakeSkills(1, 24);
  SkillVector before = skills;
  Grouping grouping;
  grouping.groups.resize(4);
  for (int i = 0; i < 24; ++i) grouping.groups[i % 4].push_back(i);

  auto result = ApplyRound(GetParam().mode, grouping, *gain, skills);
  ASSERT_TRUE(result.ok());
  int top = static_cast<int>(
      std::max_element(before.begin(), before.end()) - before.begin());
  EXPECT_DOUBLE_EQ(skills[top], before[top]);
  for (size_t i = 0; i < skills.size(); ++i) {
    EXPECT_GE(skills[i], before[i] - 1e-12);
  }
}

TEST_P(GainModePropertyTest, NobodyOvertakesTheirBestTeacher) {
  auto gain = MakeGain(GetParam().gain_name);
  SkillVector skills = MakeSkills(2, 20);
  SkillVector before = skills;
  Grouping grouping;
  grouping.groups.resize(2);
  for (int i = 0; i < 20; ++i) grouping.groups[i % 2].push_back(i);
  ASSERT_TRUE(ApplyRound(GetParam().mode, grouping, *gain, skills).ok());
  for (const auto& group : grouping.groups) {
    double group_max = 0.0;
    for (int id : group) group_max = std::max(group_max, before[id]);
    for (int id : group) {
      EXPECT_LE(skills[id], group_max + 1e-12);
    }
  }
}

TEST_P(GainModePropertyTest, GainMatchesSkillDeltaOverProcess) {
  auto gain = MakeGain(GetParam().gain_name);
  SkillVector skills = MakeSkills(3, 30);
  auto policy = MakeDyGroupsPolicy(GetParam().mode);
  ProcessConfig config;
  config.num_groups = 3;
  config.num_rounds = 4;
  config.mode = GetParam().mode;
  auto result = RunProcess(skills, config, *gain, *policy);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_gain,
              TotalSkill(result->final_skills) - TotalSkill(skills),
              1e-7 * std::max(1.0, TotalSkill(skills)));
}

TEST_P(GainModePropertyTest, FastAndNaiveUpdatesAgree) {
  auto gain = MakeGain(GetParam().gain_name);
  SkillVector fast = MakeSkills(4, 18);
  SkillVector naive = fast;
  Grouping grouping;
  grouping.groups.resize(3);
  for (int i = 0; i < 18; ++i) grouping.groups[i % 3].push_back(i);
  auto fast_gain = ApplyRound(GetParam().mode, grouping, *gain, fast);
  auto naive_gain = ApplyRoundNaive(GetParam().mode, grouping, *gain, naive);
  ASSERT_TRUE(fast_gain.ok() && naive_gain.ok());
  EXPECT_NEAR(fast_gain.value(), naive_gain.value(), 1e-9);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], naive[i], 1e-9);
  }
}

std::vector<GainModeCase> MakeCases() {
  std::vector<GainModeCase> cases;
  for (const char* gain :
       {"linear", "linear-low", "power", "log", "satexp"}) {
    for (InteractionMode mode :
         {InteractionMode::kStar, InteractionMode::kClique}) {
      cases.push_back(GainModeCase{gain, mode});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, GainModePropertyTest, testing::ValuesIn(MakeCases()),
    [](const testing::TestParamInfo<GainModeCase>& info) {
      return info.param.Name();
    });

}  // namespace
}  // namespace tdg
