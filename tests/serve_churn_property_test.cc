// Property test for the serving plane under churn: ~200 randomized
// join/leave/advance schedules across all three policies, checking on every
// advanced round that
//
//   * every resident is grouped (keys/assignment cover exactly the current
//     population),
//   * group sizes stay within the m/m+1 policy bounds (single group of n
//     when n < m),
//   * the round gain is finite and non-negative,
//
// and, for a sample of schedules, that journaling the schedule to disk and
// replaying it through CohortManager::Open reconstructs the cohort
// bitwise — rounds, skills, and the RNG stream position (checked by
// advancing once more on both sides).
//
// Seeds are fixed: the schedule corpus is identical on every run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "random/rng.h"
#include "serve/cohort.h"
#include "serve/cohort_manager.h"
#include "sweep_shard_test_util.h"

namespace tdg::serve {
namespace {

struct Op {
  enum Kind { kJoin, kLeave, kAdvance } kind;
  std::string key;   // join/leave
  double skill = 0;  // join
};

struct Schedule {
  CohortConfig config;
  std::vector<CohortParticipant> initial;
  std::vector<Op> ops;
};

Schedule RandomSchedule(random::Rng& rng, int index) {
  Schedule schedule;
  schedule.config.group_size = 2 + static_cast<int>(rng.NextBounded(4));
  switch (rng.NextBounded(3)) {
    case 0:
      schedule.config.policy = CohortPolicy::kStar;
      break;
    case 1:
      schedule.config.policy = CohortPolicy::kClique;
      break;
    default:
      schedule.config.policy = CohortPolicy::kRandom;
      break;
  }
  schedule.config.mode = rng.NextBounded(2) == 0 ? InteractionMode::kStar
                                                 : InteractionMode::kClique;
  schedule.config.learning_rate = 0.05 + 0.9 * rng.NextDouble();
  schedule.config.seed = 1 + rng.NextBounded(1000000);

  int next_key = 0;
  auto fresh_key = [&next_key, index] {
    return "s" + std::to_string(index) + "-p" + std::to_string(next_key++);
  };
  auto fresh_skill = [&rng] { return 0.25 + 4.0 * rng.NextDouble(); };

  uint64_t initial_count = 1 + rng.NextBounded(12);
  for (uint64_t i = 0; i < initial_count; ++i) {
    schedule.initial.push_back({fresh_key(), fresh_skill()});
  }

  // Track the live population so leaves always target a resident and the
  // cohort never empties (an empty cohort cannot advance, which is its own
  // test elsewhere — here every advance must succeed).
  std::vector<std::string> resident;
  for (const CohortParticipant& participant : schedule.initial) {
    resident.push_back(participant.key);
  }
  uint64_t op_count = 6 + rng.NextBounded(15);
  for (uint64_t i = 0; i < op_count; ++i) {
    switch (rng.NextBounded(4)) {
      case 0: {
        Op op{Op::kJoin, fresh_key(), fresh_skill()};
        resident.push_back(op.key);
        schedule.ops.push_back(std::move(op));
        break;
      }
      case 1: {
        if (resident.size() <= 1) {
          schedule.ops.push_back({Op::kAdvance, "", 0});
          break;
        }
        size_t victim = rng.NextBounded(resident.size());
        schedule.ops.push_back({Op::kLeave, resident[victim], 0});
        resident.erase(resident.begin() +
                       static_cast<std::ptrdiff_t>(victim));
        break;
      }
      default:
        schedule.ops.push_back({Op::kAdvance, "", 0});
        break;
    }
  }
  // Every schedule ends with at least one round.
  schedule.ops.push_back({Op::kAdvance, "", 0});
  return schedule;
}

/// The per-round invariants, checked against the population that was
/// resident when the round ran.
void CheckRound(const CohortRound& round,
                const std::vector<std::string>& population, int group_size,
                const std::string& context) {
  SCOPED_TRACE(context);
  const int n = static_cast<int>(population.size());
  ASSERT_EQ(round.keys, population) << "a resident was not grouped";
  ASSERT_EQ(round.assignment.size(), population.size());
  ASSERT_GE(round.num_groups, 1);
  std::vector<int> sizes(static_cast<size_t>(round.num_groups), 0);
  for (int group : round.assignment) {
    ASSERT_GE(group, 0);
    ASSERT_LT(group, round.num_groups);
    ++sizes[static_cast<size_t>(group)];
  }
  if (n < group_size) {
    EXPECT_EQ(round.num_groups, 1);
    EXPECT_EQ(sizes[0], n);
  } else {
    // Balanced profile: k = floor(n/m) groups of floor(n/k) / ceil(n/k),
    // so no group is undersized and the spread is at most one.
    const int k = n / group_size;
    EXPECT_EQ(round.num_groups, k);
    const auto [smallest, largest] =
        std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_GE(*smallest, group_size) << "undersized group";
    EXPECT_EQ(*smallest, n / k);
    EXPECT_LE(*largest - *smallest, 1) << "unbalanced groups";
  }
  EXPECT_TRUE(std::isfinite(round.gain));
  EXPECT_GE(round.gain, 0.0);
}

TEST(ServeChurnPropertyTest, RandomSchedulesKeepEveryRoundWithinPolicy) {
  random::Rng rng(0x5EDC0117ull);
  for (int index = 0; index < 200; ++index) {
    Schedule schedule = RandomSchedule(rng, index);
    SCOPED_TRACE("schedule " + std::to_string(index));
    auto cohort = Cohort::Create("churn", schedule.config, schedule.initial);
    ASSERT_TRUE(cohort.ok()) << cohort.status();

    std::vector<std::string> population;
    for (const CohortParticipant& participant : schedule.initial) {
      population.push_back(participant.key);
    }
    int rounds = 0;
    for (size_t i = 0; i < schedule.ops.size(); ++i) {
      const Op& op = schedule.ops[i];
      switch (op.kind) {
        case Op::kJoin:
          ASSERT_TRUE(cohort->Join(op.key, op.skill).ok());
          population.push_back(op.key);
          break;
        case Op::kLeave: {
          ASSERT_TRUE(cohort->Leave(op.key).ok());
          auto at = std::find(population.begin(), population.end(), op.key);
          ASSERT_NE(at, population.end());
          population.erase(at);
          break;
        }
        case Op::kAdvance: {
          auto gain = cohort->Advance();
          ASSERT_TRUE(gain.ok()) << gain.status();
          ASSERT_EQ(cohort->rounds_advanced(), rounds + 1);
          CheckRound(cohort->rounds().back(), population,
                     schedule.config.group_size,
                     "op " + std::to_string(i) + " (round " +
                         std::to_string(rounds) + ")");
          ++rounds;
          break;
        }
      }
    }
    EXPECT_EQ(cohort->num_participants(),
              static_cast<int>(population.size()));
  }
}

TEST(ServeChurnPropertyTest, JournaledSchedulesReplayBitwise) {
  // A sample of randomized schedules, each run twice: once through a
  // disk-backed manager that is then dropped and reopened (journal replay),
  // once through an in-memory manager as the uninterrupted reference.
  random::Rng rng(0x0BADF00Dull);
  const std::string scratch = test::MakeScratchDir();
  for (int index = 0; index < 25; ++index) {
    Schedule schedule = RandomSchedule(rng, index);
    SCOPED_TRACE("schedule " + std::to_string(index));
    const std::string id = "replay-" + std::to_string(index);
    CohortManager::Options disk;
    disk.state_dir = scratch + "/state-" + std::to_string(index);

    auto apply = [&schedule, &id](CohortManager& manager) {
      ASSERT_TRUE(
          manager.Enroll(id, schedule.config, schedule.initial).ok());
      for (const Op& op : schedule.ops) {
        switch (op.kind) {
          case Op::kJoin:
            ASSERT_TRUE(manager.Join(id, op.key, op.skill).ok());
            break;
          case Op::kLeave:
            ASSERT_TRUE(manager.Leave(id, op.key).ok());
            break;
          case Op::kAdvance:
            ASSERT_TRUE(manager.Advance(id).ok());
            break;
        }
      }
    };

    {
      auto durable = CohortManager::Open(disk);
      ASSERT_TRUE(durable.ok()) << durable.status();
      apply(**durable);
    }  // process "dies"; only the journal survives

    auto reference = CohortManager::Open({});
    ASSERT_TRUE(reference.ok()) << reference.status();
    apply(**reference);

    auto restored = CohortManager::Open(disk);
    ASSERT_TRUE(restored.ok()) << restored.status();
    ASSERT_EQ((*restored)->restored_cohorts(), 1);
    auto restored_cohort = (*restored)->SnapshotCohort(id);
    auto reference_cohort = (*reference)->SnapshotCohort(id);
    ASSERT_TRUE(restored_cohort.ok()) << restored_cohort.status();
    ASSERT_TRUE(reference_cohort.ok());
    // Defaulted == on CohortRound/CohortParticipant: exact doubles.
    ASSERT_EQ(restored_cohort->rounds(), reference_cohort->rounds());
    ASSERT_EQ(restored_cohort->participants(),
              reference_cohort->participants());

    // RNG stream position: the next round after restore must match the
    // uninterrupted run's next round (bitwise, including kRandom cohorts).
    auto restored_gain = (*restored)->Advance(id);
    auto reference_gain = (*reference)->Advance(id);
    ASSERT_TRUE(restored_gain.ok()) << restored_gain.status();
    ASSERT_TRUE(reference_gain.ok());
    ASSERT_EQ(*restored_gain, *reference_gain);
    const int last = restored_cohort->rounds_advanced();
    auto restored_round = (*restored)->GetRound(id, last);
    auto reference_round = (*reference)->GetRound(id, last);
    ASSERT_TRUE(restored_round.ok());
    ASSERT_TRUE(reference_round.ok());
    ASSERT_EQ(*restored_round, *reference_round);
  }
}

}  // namespace
}  // namespace tdg::serve
