// Exhaustive small-instance validation of the paper's §IV theorems.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/brute_force.h"
#include "core/dygroups.h"
#include "core/interaction.h"
#include "core/objective.h"
#include "core/process.h"
#include "baselines/random_assignment.h"
#include "random/distributions.h"
#include "stats/descriptive.h"

namespace tdg {
namespace {

// Ids of each group's teacher (pre-round maximum).
std::set<int> Teachers(const Grouping& grouping, const SkillVector& skills) {
  std::set<int> teachers;
  for (const auto& group : grouping.groups) {
    int best = group.front();
    for (int id : group) {
      if (skills[id] > skills[best]) best = id;
    }
    teachers.insert(best);
  }
  return teachers;
}

// Theorem 1: in star mode, (a) every round-optimal grouping has the top-k
// skills as teachers of distinct groups, and (b) every grouping with that
// property attains the same (maximal) gain.
TEST(Theorem1Test, TopKTeachersCharacterizeRoundOptima) {
  random::Rng rng(21);
  LinearGain gain(0.5);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 6 + 3 * static_cast<int>(rng.NextBounded(2));  // 6 or 9
    int k = (n == 6) ? 2 : 3;
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kUniform, n);
    for (double& s : skills) s += 0.01;

    std::vector<int> sorted = SortedByskillDescending(skills);
    std::set<int> top_k(sorted.begin(), sorted.begin() + k);

    auto groupings = EnumerateEquiSizedGroupings(n, k);
    ASSERT_TRUE(groupings.ok());
    double best = -1.0;
    for (const Grouping& g : groupings.value()) {
      best = std::max(
          best, EvaluateRoundGain(InteractionMode::kStar, g, gain, skills)
                    .value());
    }
    for (const Grouping& g : groupings.value()) {
      double lg =
          EvaluateRoundGain(InteractionMode::kStar, g, gain, skills).value();
      bool top_k_teachers = Teachers(g, skills) == top_k;
      if (top_k_teachers) {
        EXPECT_NEAR(lg, best, 1e-12) << "part (b) violated: " << g.ToString();
      } else {
        EXPECT_LT(lg, best + 1e-12);
      }
      if (std::abs(lg - best) < 1e-12) {
        EXPECT_TRUE(top_k_teachers)
            << "part (a) violated: " << g.ToString();
      }
    }
    // And DyGroups-Star-Local attains the optimum.
    auto local = DyGroupsStarLocal(skills, k);
    ASSERT_TRUE(local.ok());
    EXPECT_NEAR(EvaluateRoundGain(InteractionMode::kStar, local.value(), gain,
                                  skills)
                    .value(),
                best, 1e-12);
  }
}

// Theorem 2: among all round-optimal star groupings, Algorithm 2's output
// maximizes the variance of the post-round skills.
TEST(Theorem2Test, Algorithm2MaximizesPostRoundVariance) {
  random::Rng rng(23);
  LinearGain gain(0.5);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 8;
    int k = 2;
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kUniform, n);
    for (double& s : skills) s += 0.01;

    auto groupings = EnumerateEquiSizedGroupings(n, k);
    ASSERT_TRUE(groupings.ok());
    double best_gain = -1.0;
    for (const Grouping& g : groupings.value()) {
      best_gain = std::max(
          best_gain,
          EvaluateRoundGain(InteractionMode::kStar, g, gain, skills).value());
    }
    double max_variance = -1.0;
    for (const Grouping& g : groupings.value()) {
      SkillVector updated = skills;
      double lg = ApplyRound(InteractionMode::kStar, g, gain, updated).value();
      if (std::abs(lg - best_gain) < 1e-12) {
        max_variance =
            std::max(max_variance, stats::PopulationVariance(updated));
      }
    }

    auto local = DyGroupsStarLocal(skills, k);
    ASSERT_TRUE(local.ok());
    SkillVector updated = skills;
    ASSERT_TRUE(
        ApplyRound(InteractionMode::kStar, local.value(), gain, updated)
            .ok());
    EXPECT_NEAR(stats::PopulationVariance(updated), max_variance, 1e-12);
  }
}

// Theorem 4: Algorithm 3's grouping maximizes the clique-mode round gain.
TEST(Theorem4Test, Algorithm3IsRoundOptimalForClique) {
  random::Rng rng(29);
  LinearGain gain(0.5);
  for (int trial = 0; trial < 20; ++trial) {
    int n = (trial % 2 == 0) ? 6 : 8;
    int k = 2;
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kUniform, n);
    for (double& s : skills) s += 0.01;

    auto groupings = EnumerateEquiSizedGroupings(n, k);
    ASSERT_TRUE(groupings.ok());
    double best = -1.0;
    for (const Grouping& g : groupings.value()) {
      best = std::max(
          best, EvaluateRoundGain(InteractionMode::kClique, g, gain, skills)
                    .value());
    }
    auto local = DyGroupsCliqueLocal(skills, k);
    ASSERT_TRUE(local.ok());
    EXPECT_NEAR(EvaluateRoundGain(InteractionMode::kClique, local.value(),
                                  gain, skills)
                    .value(),
                best, 1e-12);
  }
}

// Also for k = 3 on n = 9 (280 groupings).
TEST(Theorem4Test, Algorithm3IsRoundOptimalForCliqueKThree) {
  random::Rng rng(31);
  LinearGain gain(0.3);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kUniform, 9);
  for (double& s : skills) s += 0.01;
  auto groupings = EnumerateEquiSizedGroupings(9, 3);
  ASSERT_TRUE(groupings.ok());
  double best = -1.0;
  for (const Grouping& g : groupings.value()) {
    best = std::max(
        best, EvaluateRoundGain(InteractionMode::kClique, g, gain, skills)
                  .value());
  }
  auto local = DyGroupsCliqueLocal(skills, 3);
  ASSERT_TRUE(local.ok());
  EXPECT_NEAR(EvaluateRoundGain(InteractionMode::kClique, local.value(), gain,
                                skills)
                  .value(),
              best, 1e-12);
}

// Eq. 4: maximizing Σ_t LG_t is the same as minimizing the final deficit sum;
// the two bookkeepings agree exactly.
TEST(ObjectiveTest, GainEqualsDeficitReduction) {
  random::Rng rng(37);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 12);
  DyGroupsStarPolicy policy;
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 2;
  config.num_rounds = 4;
  auto result = RunProcess(skills, config, gain, policy);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_gain,
              TotalGainFromDeficits(SkillDeficits(result->initial_skills),
                                    SkillDeficits(result->final_skills)),
              1e-9);
}

// Eq. 5: the closed-form deficit recursion holds for *any* k=2 star-mode
// grouping sequence, not just DyGroups — validated with both DyGroups and
// random groupings.
TEST(ObjectiveTest, Equation5ClosedFormMatchesSimulation) {
  random::Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    int n = 8;
    double r = 0.1 + 0.8 * rng.NextDouble();
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kUniform, n);
    for (double& s : skills) s += 0.01;
    LinearGain gain(r);
    ProcessConfig config;
    config.num_groups = 2;
    config.num_rounds = 3;
    config.mode = InteractionMode::kStar;

    for (bool use_random : {false, true}) {
      std::unique_ptr<GroupingPolicy> policy;
      if (use_random) {
        policy = std::make_unique<baselines::RandomAssignmentPolicy>(trial);
      } else {
        policy = std::make_unique<DyGroupsStarPolicy>();
      }
      auto result = RunProcess(skills, config, gain, *policy);
      ASSERT_TRUE(result.ok());

      auto second_teacher = SecondTeacherDeficits(result.value());
      ASSERT_TRUE(second_teacher.ok());
      std::vector<double> initial_deficits =
          SkillDeficits(result->initial_skills);
      double d = 0.0;
      for (double b : initial_deficits) d += b;
      double predicted =
          StarK2DeficitObjective(d, n, r, second_teacher.value());
      std::vector<double> final_deficits =
          SkillDeficits(result->final_skills);
      double actual = 0.0;
      for (double b : final_deficits) actual += b;
      EXPECT_NEAR(predicted, actual, 1e-9)
          << (use_random ? "random" : "dygroups") << " trial " << trial;
    }
  }
}

// Lemma 1 count: with k = 2 there are 2 * C(n-2, n/2-1) round-optimal
// groupings. (The factor 2 in the paper counts the two ways of labeling the
// groups; unordered, it is C(n-2, n/2-1).)
TEST(Lemma1Test, NumberOfRoundOptimaMatches) {
  SkillVector skills = {0.1, 0.25, 0.4, 0.55, 0.7, 0.85};  // n = 6, distinct
  LinearGain gain(0.5);
  auto groupings = EnumerateEquiSizedGroupings(6, 2);
  ASSERT_TRUE(groupings.ok());
  double best = -1.0;
  for (const Grouping& g : groupings.value()) {
    best = std::max(
        best,
        EvaluateRoundGain(InteractionMode::kStar, g, gain, skills).value());
  }
  int optima = 0;
  for (const Grouping& g : groupings.value()) {
    if (std::abs(EvaluateRoundGain(InteractionMode::kStar, g, gain, skills)
                     .value() -
                 best) < 1e-12) {
      ++optima;
    }
  }
  EXPECT_EQ(optima, 6);  // C(4, 2) = 6 unordered
}

}  // namespace
}  // namespace tdg
