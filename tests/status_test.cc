#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace tdg::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsThenPropagates() {
  TDG_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, OkStatusBecomesInternalError) {
  StatusOr<int> v{Status::OK()};
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

StatusOr<int> Doubled(StatusOr<int> input) {
  TDG_ASSIGN_OR_RETURN(int x, input);
  return 2 * x;
}

TEST(StatusOrTest, AssignOrReturnUnwrapsAndPropagates) {
  StatusOr<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  StatusOr<int> err = Doubled(Status::OutOfRange("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

}  // namespace
}  // namespace tdg::util
