#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tdg::util {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 1000, [&hits](int i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<long long> sum{0};
  ParallelFor(pool, 100, [&sum](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    ParallelFor(pool, 50, [&counter](int) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace tdg::util
