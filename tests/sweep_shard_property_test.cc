// Property test for the shard planner: for randomized grid sizes and shard
// counts, the shards are pairwise disjoint, cover the grid exactly, are
// balanced to within one cell, keep grid order within each shard, and are
// stable under re-planning with the same inputs (a resumed shard must own
// exactly the cells it owned before the crash).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exp/sweep_shard.h"
#include "random/rng.h"

namespace tdg::exp {
namespace {

TEST(SweepShardPropertyTest, RandomizedPlansAreDisjointCoveringAndStable) {
  random::Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    const long long num_cells =
        static_cast<long long>(rng.NextBounded(601));
    const int shard_count = 1 + static_cast<int>(rng.NextBounded(24));

    std::vector<long long> all;
    for (int shard = 0; shard < shard_count; ++shard) {
      std::vector<long long> indices =
          ShardCellIndices(num_cells, shard, shard_count);

      // Stable: re-planning with identical inputs yields identical slices.
      EXPECT_EQ(indices,
                ShardCellIndices(num_cells, shard, shard_count))
          << "unstable plan: cells=" << num_cells << " shard=" << shard
          << "/" << shard_count;

      // Balanced: block partition sizes differ by at most one.
      const long long base = num_cells / shard_count;
      EXPECT_GE(static_cast<long long>(indices.size()), base);
      EXPECT_LE(static_cast<long long>(indices.size()), base + 1);

      // Grid order within the shard (contiguous ascending).
      EXPECT_TRUE(std::is_sorted(indices.begin(), indices.end()));
      if (!indices.empty()) {
        EXPECT_EQ(indices.back() - indices.front() + 1,
                  static_cast<long long>(indices.size()))
            << "shard must be one contiguous block";
      }
      all.insert(all.end(), indices.begin(), indices.end());
    }

    // Disjoint + covering: the concatenation is exactly 0..num_cells-1.
    // (Shards are contiguous ascending blocks, so concatenating them in
    // shard order must already be sorted — any overlap or gap breaks it.)
    ASSERT_EQ(static_cast<long long>(all.size()), num_cells)
        << "cells=" << num_cells << " shards=" << shard_count;
    for (long long i = 0; i < num_cells; ++i) {
      ASSERT_EQ(all[static_cast<size_t>(i)], i)
          << "cells=" << num_cells << " shards=" << shard_count;
    }
  }
}

TEST(SweepShardPropertyTest, MoreShardsThanCellsSpreadsSingletons) {
  // With fewer cells than shards the floor-block partition hands out
  // singleton slices and leaves the rest empty; no shard ever gets two.
  const long long num_cells = 3;
  const int shard_count = 8;
  long long covered = 0;
  int empty_shards = 0;
  for (int shard = 0; shard < shard_count; ++shard) {
    const size_t size =
        ShardCellIndices(num_cells, shard, shard_count).size();
    EXPECT_LE(size, 1u);
    covered += static_cast<long long>(size);
    if (size == 0) ++empty_shards;
  }
  EXPECT_EQ(covered, num_cells);
  EXPECT_EQ(empty_shards, shard_count - static_cast<int>(num_cells));
}

TEST(SweepShardPropertyDeathTest, RejectsOutOfRangeShardIndex) {
  EXPECT_DEATH(ShardCellIndices(10, 3, 3), "Check failed");
  EXPECT_DEATH(ShardCellIndices(10, -1, 3), "Check failed");
  EXPECT_DEATH(ShardCellIndices(10, 0, 0), "Check failed");
}

}  // namespace
}  // namespace tdg::exp
