// Serving-plane telemetry coverage (DESIGN.md §14): every response class —
// 2xx, 4xx, 5xx, and requests the transport layer rejected before routing
// (HttpLimits violations) — lands in the per-endpoint latency histograms
// and the response-class counters; /metrics exports the rolling windowed
// quantiles; /statusz carries the windows table; /tracez and /slowz serve
// the tail sampler's rings.
//
// The metrics registry is process-global, so every check is a before/after
// delta (each gtest TEST runs as its own ctest process, but tests still
// avoid assuming absolute counter values).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/windowed_histogram.h"
#include "serve/cohort_manager.h"
#include "serve/cohort_server.h"
#include "util/json.h"
#include "util/net.h"

namespace tdg::serve {
namespace {

std::string EnrollBody(const std::string& id, int participants) {
  std::string body = "{\"id\":\"" + id +
                     "\",\"config\":{\"group_size\":3,\"policy\":\"star\"},"
                     "\"participants\":[";
  for (int i = 0; i < participants; ++i) {
    if (i > 0) body += ",";
    body += "{\"key\":\"" + id + "-p" + std::to_string(i) +
            "\",\"skill\":" + std::to_string(i + 1) + ".0}";
  }
  return body + "]}";
}

int64_t HistogramCount(const std::string& name) {
  return obs::MetricsRegistry::Global().GetHistogram(name).Count();
}

int64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Global().GetCounter(name).Value();
}

int64_t WindowedCount(const std::string& name) {
  // The widest window (5m) sees everything a test just recorded.
  const obs::WindowedHistogramStats stats =
      obs::MetricsRegistry::Global().GetWindowed(name).Snapshot();
  return stats.windows.back().count;
}

// The server files a request's telemetry after the response bytes are on
// the wire (so total_micros includes the write phase), which means a
// client that just read its response can race the bookkeeping by a hair.
// Poll with a deadline before asserting exact deltas.
template <typename Predicate>
bool Eventually(Predicate pred, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

class ServeTelemetryTest : public testing::Test {
 protected:
  void StartServer(CohortServer::Options options = {}) {
    auto manager = CohortManager::Open({});
    ASSERT_TRUE(manager.ok()) << manager.status();
    manager_ = std::move(manager).value();
    options.num_workers = 2;
    auto server = CohortServer::Start(manager_.get(), std::move(options));
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(server).value();
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  int port() const { return server_->port(); }

  std::unique_ptr<CohortManager> manager_;
  std::unique_ptr<CohortServer> server_;
};

TEST_F(ServeTelemetryTest, SuccessfulRequestsRecordLatencyAndResponseClass) {
  StartServer();
  const int64_t hist_before = HistogramCount("serve/latency/healthz");
  const int64_t windowed_before =
      WindowedCount("serve/latency_seconds/healthz");
  const int64_t ok_before = CounterValue("serve/responses/2xx");

  for (int i = 0; i < 3; ++i) {
    auto response = util::net::HttpGet(port(), "/healthz");
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(*util::net::HttpStatusCode(*response), 200);
  }

  EXPECT_TRUE(Eventually([&] {
    return HistogramCount("serve/latency/healthz") == hist_before + 3 &&
           WindowedCount("serve/latency_seconds/healthz") ==
               windowed_before + 3 &&
           CounterValue("serve/responses/2xx") == ok_before + 3;
  }));
  EXPECT_EQ(HistogramCount("serve/latency/healthz"), hist_before + 3);
  EXPECT_EQ(WindowedCount("serve/latency_seconds/healthz"),
            windowed_before + 3);
  EXPECT_EQ(CounterValue("serve/responses/2xx"), ok_before + 3);
}

TEST_F(ServeTelemetryTest, ErrorResponsesAreRecordedNotDropped) {
  StartServer();
  const int64_t cohort_before = HistogramCount("serve/latency/cohort");
  const int64_t other_before = HistogramCount("serve/latency/other");
  const int64_t err4_before = CounterValue("serve/responses/4xx");
  const int64_t win_cohort_before =
      WindowedCount("serve/latency_seconds/cohort");

  // 404 on a routed endpoint (unknown cohort) and on an unknown path.
  auto missing = util::net::HttpGet(port(), "/cohorts/no-such-cohort");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_EQ(*util::net::HttpStatusCode(*missing), 404);
  auto unknown = util::net::HttpGet(port(), "/no/such/path");
  ASSERT_TRUE(unknown.ok()) << unknown.status();
  EXPECT_EQ(*util::net::HttpStatusCode(*unknown), 404);

  EXPECT_TRUE(Eventually([&] {
    return HistogramCount("serve/latency/cohort") == cohort_before + 1 &&
           HistogramCount("serve/latency/other") == other_before + 1 &&
           CounterValue("serve/responses/4xx") == err4_before + 2;
  }));
  EXPECT_EQ(HistogramCount("serve/latency/cohort"), cohort_before + 1);
  EXPECT_EQ(HistogramCount("serve/latency/other"), other_before + 1);
  EXPECT_EQ(CounterValue("serve/responses/4xx"), err4_before + 2);
  // The windowed histogram marks them as errors.
  EXPECT_EQ(WindowedCount("serve/latency_seconds/cohort"),
            win_cohort_before + 1);
  const auto stats = obs::MetricsRegistry::Global()
                         .GetWindowed("serve/latency_seconds/cohort")
                         .Snapshot();
  EXPECT_GT(stats.windows.back().errors, 0);
}

TEST_F(ServeTelemetryTest, LimitRejectedRequestsStillHitTheHistograms) {
  // Requests the transport layer refuses before routing (HttpLimits) must
  // not vanish from telemetry: they get the "unreadable" endpoint label.
  CohortServer::Options options;
  options.limits.max_body_bytes = 64;
  StartServer(std::move(options));
  const int64_t unreadable_before = HistogramCount("serve/latency/unreadable");
  const int64_t win_before = WindowedCount("serve/latency_seconds/unreadable");
  const int64_t err4_before = CounterValue("serve/responses/4xx");

  // Declares a body over the limit; the server rejects (413) after reading
  // only the head, before any body bytes exist to route.
  auto client = util::net::ConnectLoopback(port(), /*timeout_ms=*/5000);
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(client
                  ->WriteAll("POST /cohorts HTTP/1.1\r\n"
                             "Content-Length: 1000\r\n\r\n")
                  .ok());
  auto response = client->ReadToEof(1 << 20, /*timeout_ms=*/10000);
  ASSERT_TRUE(response.ok()) << response.status();
  auto code = util::net::HttpStatusCode(*response);
  ASSERT_TRUE(code.ok());
  EXPECT_GE(*code, 400);
  EXPECT_LT(*code, 500);

  EXPECT_TRUE(Eventually([&] {
    return HistogramCount("serve/latency/unreadable") ==
               unreadable_before + 1 &&
           WindowedCount("serve/latency_seconds/unreadable") ==
               win_before + 1 &&
           CounterValue("serve/responses/4xx") == err4_before + 1;
  }));
  EXPECT_EQ(HistogramCount("serve/latency/unreadable"), unreadable_before + 1);
  EXPECT_EQ(WindowedCount("serve/latency_seconds/unreadable"), win_before + 1);
  EXPECT_EQ(CounterValue("serve/responses/4xx"), err4_before + 1);
}

TEST_F(ServeTelemetryTest, MetricsExportRollingQuantilesPerEndpoint) {
  StartServer();
  ASSERT_EQ(*util::net::HttpStatusCode(
                *util::net::HttpGet(port(), "/healthz")),
            200);
  // The healthz record lands moments after its response; poll until the
  // windowed family shows up in the export.
  std::string body;
  ASSERT_TRUE(Eventually([&] {
    auto response = util::net::HttpGet(port(), "/metrics");
    if (!response.ok()) return false;
    auto got = util::net::HttpBody(*response);
    if (!got.ok()) return false;
    body = *got;
    return body.find("tdg_serve_latency_seconds{") != std::string::npos;
  })) << "windowed latency family never appeared on /metrics";
  // The rolling windows render as a labeled gauge family with qps and
  // error-rate companions.
  EXPECT_NE(body.find("tdg_serve_latency_seconds{"), std::string::npos);
  EXPECT_NE(body.find("endpoint=\"healthz\""), std::string::npos);
  EXPECT_NE(body.find("window=\"10s\""), std::string::npos);
  EXPECT_NE(body.find("window=\"1m\""), std::string::npos);
  EXPECT_NE(body.find("window=\"5m\""), std::string::npos);
  EXPECT_NE(body.find("quantile=\"p50\""), std::string::npos);
  EXPECT_NE(body.find("quantile=\"p95\""), std::string::npos);
  EXPECT_NE(body.find("quantile=\"p99\""), std::string::npos);
  EXPECT_NE(body.find("tdg_serve_latency_seconds_qps{"), std::string::npos);
  EXPECT_NE(body.find("tdg_serve_latency_seconds_error_rate{"),
            std::string::npos);
}

TEST_F(ServeTelemetryTest, StatuszCarriesTheWindowsTable) {
  StartServer();
  ASSERT_EQ(*util::net::HttpStatusCode(
                *util::net::HttpGet(port(), "/healthz")),
            200);
  // Same post-write race as /metrics: poll until the healthz window lands.
  std::string body;
  ASSERT_TRUE(Eventually([&] {
    auto response = util::net::HttpGet(port(), "/statusz");
    if (!response.ok()) return false;
    auto got = util::net::HttpBody(*response);
    if (!got.ok()) return false;
    body = *got;
    auto probe = util::JsonValue::Parse(body);
    if (!probe.ok()) return false;
    auto probe_windows = probe->GetField("windows");
    return probe_windows.ok() && probe_windows->GetField("healthz").ok();
  })) << "healthz window never appeared on /statusz";
  auto json = util::JsonValue::Parse(body);
  ASSERT_TRUE(json.ok()) << json.status();
  auto windows = json->GetField("windows");
  ASSERT_TRUE(windows.ok()) << windows.status();
  auto healthz = windows->GetField("healthz");
  ASSERT_TRUE(healthz.ok()) << "statusz windows: "
                            << windows->Serialize();
  auto one_minute = healthz->GetField("1m");
  ASSERT_TRUE(one_minute.ok());
  EXPECT_GE(one_minute->GetField("count")->AsNumber(), 1.0);
  EXPECT_TRUE(one_minute->GetField("p99").ok());
  EXPECT_TRUE(one_minute->GetField("qps").ok());
  EXPECT_TRUE(one_minute->GetField("error_rate").ok());
}

TEST_F(ServeTelemetryTest, TracezAndSlowzServeTheSampledTraces) {
  CohortServer::Options options;
  options.tail.slow_threshold_micros = 0;  // keep everything
  StartServer(std::move(options));
  ASSERT_EQ(*util::net::HttpStatusCode(*util::net::HttpDo(
                port(), "POST", "/cohorts", EnrollBody("tele", 6))),
            201);
  ASSERT_EQ(*util::net::HttpStatusCode(*util::net::HttpDo(
                port(), "POST", "/cohorts/tele/advance", "{}")),
            200);

  // Both the enroll's and the advance's traces are filed after their
  // responses; poll until both are visible.
  std::string tracez_body;
  ASSERT_TRUE(Eventually([&] {
    auto tracez = util::net::HttpGet(port(), "/tracez");
    if (!tracez.ok() || *util::net::HttpStatusCode(*tracez) != 200) {
      return false;
    }
    auto got = util::net::HttpBody(*tracez);
    if (!got.ok()) return false;
    tracez_body = *got;
    auto probe = util::JsonValue::Parse(tracez_body);
    if (!probe.ok()) return false;
    auto probe_traces = probe->GetField("traces");
    return probe_traces.ok() && probe_traces->AsArray().size() >= 2 &&
           tracez_body.find("\"endpoint\":\"advance\"") != std::string::npos;
  })) << "advance trace never appeared on /tracez";
  auto tracez_json = util::JsonValue::Parse(tracez_body);
  ASSERT_TRUE(tracez_json.ok()) << tracez_json.status();
  auto traces = tracez_json->GetField("traces");
  ASSERT_TRUE(traces.ok());
  ASSERT_GE(traces->AsArray().size(), 2u);  // enroll + advance at least
  bool saw_advance = false;
  for (const util::JsonValue& trace : traces->AsArray()) {
    EXPECT_NE(trace.GetField("trace_id")->AsNumber(), 0.0);
    if (trace.GetField("endpoint")->AsString() == "advance") {
      saw_advance = true;
      EXPECT_EQ(trace.GetField("status")->AsNumber(), 200.0);
    }
  }
  EXPECT_TRUE(saw_advance);

  auto slowz = util::net::HttpGet(port(), "/slowz");
  ASSERT_TRUE(slowz.ok()) << slowz.status();
  ASSERT_EQ(*util::net::HttpStatusCode(*slowz), 200);
  auto slowz_body = util::net::HttpBody(*slowz);
  ASSERT_TRUE(slowz_body.ok());
  // Per-phase breakdown: the advance's trace carries the lock-wait,
  // journal-fsync, and compute spans by name.
  EXPECT_NE(slowz_body->find("\"endpoint\":\"advance\""), std::string::npos);
  EXPECT_NE(slowz_body->find("lock_wait_micros"), std::string::npos);
  EXPECT_NE(slowz_body->find("journal_fsync_micros"), std::string::npos);
  EXPECT_NE(slowz_body->find("compute_micros"), std::string::npos);
  EXPECT_NE(slowz_body->find("serialize_micros"), std::string::npos);
  // Each line parses as JSON.
  size_t start = 0;
  int lines = 0;
  while (start < slowz_body->size()) {
    size_t end = slowz_body->find('\n', start);
    if (end == std::string::npos) break;
    auto line = util::JsonValue::Parse(slowz_body->substr(start, end - start));
    EXPECT_TRUE(line.ok()) << slowz_body->substr(start, end - start);
    ++lines;
    start = end + 1;
  }
  EXPECT_GE(lines, 2);

  // POSTs to the read-only telemetry endpoints are rejected.
  EXPECT_EQ(*util::net::HttpStatusCode(
                *util::net::HttpDo(port(), "POST", "/tracez", "{}")),
            405);
  EXPECT_EQ(*util::net::HttpStatusCode(
                *util::net::HttpDo(port(), "POST", "/slowz", "{}")),
            405);
}

}  // namespace
}  // namespace tdg::serve
