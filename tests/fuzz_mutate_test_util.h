// The deterministic mutation harness shared by the fuzz suites
// (parser_fuzz_test, serve_http_fuzz_test). Header-only; included from the
// *_test.cc files that tests/CMakeLists.txt globs into tdg_tests.
#ifndef TDG_TESTS_FUZZ_MUTATE_TEST_UTIL_H_
#define TDG_TESTS_FUZZ_MUTATE_TEST_UTIL_H_

#include <cstddef>
#include <string>

#include "random/rng.h"

namespace tdg::test {

/// Applies 1..8 random mutations: byte flip, insert, erase, truncate,
/// splice a fragment of a donor document, or duplicate a span of itself.
/// Mutated bytes cover the full 0..255 range (NUL, high bit set, ...).
/// Deterministic for a given RNG state — the corpus is identical on every
/// run and platform (the point of xoshiro over std::random_device).
inline std::string Mutate(random::Rng& rng, std::string text,
                          const std::string& donor) {
  uint64_t mutations = 1 + rng.NextBounded(8);
  for (uint64_t m = 0; m < mutations; ++m) {
    if (text.empty()) {
      text.push_back(static_cast<char>(rng.NextBounded(256)));
      continue;
    }
    auto offset = [&rng](size_t bound) {
      return static_cast<std::ptrdiff_t>(rng.NextBounded(bound));
    };
    switch (rng.NextBounded(6)) {
      case 0:
        text[rng.NextBounded(text.size())] =
            static_cast<char>(rng.NextBounded(256));
        break;
      case 1:
        text.insert(text.begin() + offset(text.size() + 1),
                    static_cast<char>(rng.NextBounded(256)));
        break;
      case 2:
        text.erase(text.begin() + offset(text.size()));
        break;
      case 3:
        text.resize(rng.NextBounded(text.size() + 1));
        break;
      case 4: {
        if (donor.empty()) break;
        size_t start = rng.NextBounded(donor.size());
        size_t len = rng.NextBounded(donor.size() - start + 1);
        text.insert(rng.NextBounded(text.size() + 1),
                    donor.substr(start, len));
        break;
      }
      default: {
        size_t start = rng.NextBounded(text.size());
        size_t len = rng.NextBounded(text.size() - start + 1);
        text.insert(rng.NextBounded(text.size() + 1),
                    text.substr(start, len));
        break;
      }
    }
  }
  return text;
}

}  // namespace tdg::test

#endif  // TDG_TESTS_FUZZ_MUTATE_TEST_UTIL_H_
