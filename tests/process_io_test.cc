#include "io/process_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/dygroups.h"
#include "random/distributions.h"

namespace tdg::io {
namespace {

ProcessResult MakeResult() {
  random::Rng rng(1);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 12);
  DyGroupsStarPolicy policy;
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 3;
  config.num_rounds = 4;
  auto result = RunProcess(skills, config, gain, policy);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(GroupingJsonTest, RoundTrips) {
  Grouping grouping({{0, 3, 1}, {2, 4, 5}});
  auto reparsed = GroupingFromJson(GroupingToJson(grouping));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->groups, grouping.groups);
}

TEST(GroupingJsonTest, RejectsMalformedJson) {
  EXPECT_FALSE(GroupingFromJson(util::JsonValue(1.0)).ok());
  util::JsonValue no_groups = util::JsonValue::MakeObject();
  EXPECT_FALSE(GroupingFromJson(no_groups).ok());
  util::JsonValue bad = util::JsonValue::MakeObject();
  bad.Set("groups", util::JsonValue("not-an-array"));
  EXPECT_FALSE(GroupingFromJson(bad).ok());
  util::JsonValue bad_member = util::JsonValue::MakeObject();
  util::JsonValue groups = util::JsonValue::MakeArray();
  util::JsonValue group = util::JsonValue::MakeArray();
  group.Append("zero");
  groups.Append(std::move(group));
  bad_member.Set("groups", std::move(groups));
  EXPECT_FALSE(GroupingFromJson(bad_member).ok());
}

TEST(ProcessResultJsonTest, RoundTripsExactly) {
  ProcessResult result = MakeResult();
  auto reparsed = ProcessResultFromJson(ProcessResultToJson(result));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->initial_skills, result.initial_skills);
  EXPECT_EQ(reparsed->final_skills, result.final_skills);
  EXPECT_EQ(reparsed->round_gains, result.round_gains);
  EXPECT_DOUBLE_EQ(reparsed->total_gain, result.total_gain);
  ASSERT_EQ(reparsed->history.size(), result.history.size());
  for (size_t t = 0; t < result.history.size(); ++t) {
    EXPECT_EQ(reparsed->history[t].grouping.groups,
              result.history[t].grouping.groups);
    EXPECT_DOUBLE_EQ(reparsed->history[t].gain, result.history[t].gain);
    EXPECT_EQ(reparsed->history[t].skills_after,
              result.history[t].skills_after);
  }
}

TEST(ProcessResultJsonTest, FileRoundTripThroughPrettyJson) {
  ProcessResult result = MakeResult();
  std::string path = testing::TempDir() + "/tdg_process_result.json";
  ASSERT_TRUE(WriteProcessResult(path, result).ok());
  auto loaded = ReadProcessResult(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->total_gain, result.total_gain);
  EXPECT_EQ(loaded->final_skills, result.final_skills);
  std::remove(path.c_str());
}

TEST(ProcessResultJsonTest, ReadRejectsMissingOrBrokenFiles) {
  EXPECT_FALSE(ReadProcessResult("/nonexistent/result.json").ok());
  std::string path = testing::TempDir() + "/tdg_broken_result.json";
  {
    std::ofstream out(path);
    out << "{\"total_gain\": \"not-a-number\"}";
  }
  EXPECT_FALSE(ReadProcessResult(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tdg::io
