#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "random/distributions.h"

namespace tdg::random {
namespace {

TEST(ZetaDistributionTest, SupportIsPositiveIntegers) {
  Rng rng(1);
  ZetaDistribution zeta(2.3);
  for (int i = 0; i < 10000; ++i) {
    int v = zeta.Sample(rng);
    EXPECT_GE(v, 1);
  }
}

TEST(ZetaDistributionTest, HeadProbabilityMatchesZetaFunction) {
  // P(1) = 1 / zeta(2.3); zeta(2.3) ≈ 1.4340, so P(1) ≈ 0.697.
  Rng rng(2);
  ZetaDistribution zeta(2.3);
  constexpr int kSamples = 200000;
  int ones = 0;
  int twos = 0;
  for (int i = 0; i < kSamples; ++i) {
    int v = zeta.Sample(rng);
    if (v == 1) ++ones;
    if (v == 2) ++twos;
  }
  double p1 = static_cast<double>(ones) / kSamples;
  EXPECT_NEAR(p1, 0.697, 0.01);
  // P(2)/P(1) = 2^{-2.3}.
  EXPECT_NEAR(static_cast<double>(twos) / ones, std::pow(2.0, -2.3), 0.01);
}

TEST(ZetaDistributionTest, ProducesHeavyTail) {
  // Unlike the bounded Zipf (max 10), the zeta distribution produces
  // occasional large values — the rare experts that separate grouping
  // policies.
  Rng rng(3);
  ZetaDistribution zeta(2.3);
  int max_value = 0;
  for (int i = 0; i < 100000; ++i) {
    max_value = std::max(max_value, zeta.Sample(rng));
  }
  EXPECT_GT(max_value, 100);
}

TEST(ZetaDistributionTest, LargerExponentConcentratesMass) {
  Rng rng(4);
  ZetaDistribution heavy(2.0);
  ZetaDistribution light(5.0);
  int heavy_ones = 0;
  int light_ones = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (heavy.Sample(rng) == 1) ++heavy_ones;
    if (light.Sample(rng) == 1) ++light_ones;
  }
  EXPECT_GT(light_ones, heavy_ones);
  // P(1) for s = 5 is 1/zeta(5) ≈ 0.9644.
  EXPECT_NEAR(static_cast<double>(light_ones) / kSamples, 0.9644, 0.01);
}

TEST(ZetaSkillsTest, GenerateAndParse) {
  Rng rng(5);
  std::vector<double> skills =
      GenerateSkills(rng, SkillDistribution::kZipfUnbounded, 1000);
  ASSERT_EQ(skills.size(), 1000u);
  for (double s : skills) {
    EXPECT_GE(s, 1.0);
    EXPECT_EQ(s, std::floor(s));
  }
  EXPECT_EQ(ParseSkillDistribution("zipf-unbounded").value(),
            SkillDistribution::kZipfUnbounded);
  EXPECT_EQ(ParseSkillDistribution("zeta").value(),
            SkillDistribution::kZipfUnbounded);
  EXPECT_EQ(SkillDistributionName(SkillDistribution::kZipfUnbounded),
            "zipf-unbounded");
}

}  // namespace
}  // namespace tdg::random
