#include "core/interaction.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/learning_gain.h"
#include "random/distributions.h"

namespace tdg {
namespace {

// --- Worked examples from paper §II ------------------------------------

// Star mode, group [0.9, 0.5, 0.3], r = 0.5: 0.5 -> 0.7, 0.3 -> 0.6,
// group gain 0.5.
TEST(StarModeTest, PaperSectionIIExample) {
  SkillVector skills = {0.9, 0.5, 0.3};
  Grouping grouping({{0, 1, 2}});
  LinearGain gain(0.5);
  auto result = ApplyRound(InteractionMode::kStar, grouping, gain, skills);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 0.5);
  EXPECT_DOUBLE_EQ(skills[0], 0.9);
  EXPECT_DOUBLE_EQ(skills[1], 0.7);
  EXPECT_DOUBLE_EQ(skills[2], 0.6);
}

// Clique mode, same group: 0.3 -> 0.3 + (0.5*0.2 + 0.5*0.6)/2 = 0.5,
// 0.5 -> 0.7, group gain 0.4.
TEST(CliqueModeTest, PaperSectionIIExample) {
  SkillVector skills = {0.9, 0.5, 0.3};
  Grouping grouping({{0, 1, 2}});
  LinearGain gain(0.5);
  auto result = ApplyRound(InteractionMode::kClique, grouping, gain, skills);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 0.4);
  EXPECT_DOUBLE_EQ(skills[0], 0.9);
  EXPECT_DOUBLE_EQ(skills[1], 0.7);
  EXPECT_DOUBLE_EQ(skills[2], 0.5);
}

// Pairwise interaction from §II: 0.3 with 0.9 at r=0.5 -> 0.6.
TEST(StarModeTest, PairwiseInteraction) {
  SkillVector skills = {0.3, 0.9};
  Grouping grouping({{0, 1}});
  LinearGain gain(0.5);
  auto result = ApplyRound(InteractionMode::kStar, grouping, gain, skills);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 0.3);
  EXPECT_DOUBLE_EQ(skills[0], 0.6);
  EXPECT_DOUBLE_EQ(skills[1], 0.9);
}

// --- Structural properties ----------------------------------------------

TEST(InteractionTest, TeacherUnalteredInBothModes) {
  for (InteractionMode mode :
       {InteractionMode::kStar, InteractionMode::kClique}) {
    SkillVector skills = {0.2, 0.95, 0.4, 0.6};
    Grouping grouping({{0, 1, 2, 3}});
    LinearGain gain(0.3);
    ASSERT_TRUE(ApplyRound(mode, grouping, gain, skills).ok());
    EXPECT_DOUBLE_EQ(skills[1], 0.95) << InteractionModeName(mode);
  }
}

TEST(InteractionTest, GainEqualsSumOfSkillDeltas) {
  random::Rng rng(7);
  for (InteractionMode mode :
       {InteractionMode::kStar, InteractionMode::kClique}) {
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kUniform, 12);
    for (double& s : skills) s += 0.01;  // ensure strictly positive
    SkillVector before = skills;
    Grouping grouping({{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}});
    LinearGain gain(0.5);
    auto result = ApplyRound(mode, grouping, gain, skills);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result.value(), AggregateGain(before, skills), 1e-12);
  }
}

TEST(InteractionTest, SkillsNeverDecrease) {
  random::Rng rng(11);
  for (InteractionMode mode :
       {InteractionMode::kStar, InteractionMode::kClique}) {
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 10);
    SkillVector before = skills;
    Grouping grouping({{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}});
    LinearGain gain(0.7);
    ASSERT_TRUE(ApplyRound(mode, grouping, gain, skills).ok());
    for (size_t i = 0; i < skills.size(); ++i) {
      EXPECT_GE(skills[i], before[i]);
    }
  }
}

// The clique averaging preserves within-group skill order (the design
// rationale stated in §II).
TEST(CliqueModeTest, PreservesWithinGroupOrder) {
  random::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kUniform, 6);
    for (double& s : skills) s += 0.01;
    SkillVector before = skills;
    Grouping grouping({{0, 1, 2, 3, 4, 5}});
    LinearGain gain(0.9);
    ASSERT_TRUE(
        ApplyRound(InteractionMode::kClique, grouping, gain, skills).ok());
    for (size_t i = 0; i < skills.size(); ++i) {
      for (size_t j = 0; j < skills.size(); ++j) {
        if (before[i] > before[j]) {
          EXPECT_GE(skills[i], skills[j])
              << "order inverted between " << i << " and " << j;
        }
      }
    }
  }
}

// Star mode does NOT preserve order in general (learners can overtake
// intermediate members) — the motivating contrast for clique averaging.
TEST(StarModeTest, CanReorderMembers) {
  SkillVector skills = {0.9, 0.5, 0.45};
  Grouping grouping({{0, 1, 2}});
  LinearGain gain(0.5);
  ASSERT_TRUE(
      ApplyRound(InteractionMode::kStar, grouping, gain, skills).ok());
  // 0.45 -> 0.675, 0.5 -> 0.7: order preserved here, but with unequal
  // starting gaps a lower member can pass a *non-grouped* higher member;
  // within a star group order is in fact preserved for linear gains.
  // What star mode does break is cross-group order:
  SkillVector cross = {0.9, 0.5, 0.6, 0.55};
  Grouping two_groups({{0, 1}, {2, 3}});
  ASSERT_TRUE(
      ApplyRound(InteractionMode::kStar, two_groups, gain, cross).ok());
  EXPECT_GT(cross[1], cross[3]);  // 0.5 -> 0.7 passes 0.55 -> 0.575
}

// --- Theorem 3: O(n) clique update matches the naive O(t^2) update ------

TEST(CliqueModeTest, FastPathMatchesNaive) {
  random::Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    int group_size = 2 + static_cast<int>(rng.NextBounded(8));
    int k = 1 + static_cast<int>(rng.NextBounded(3));
    int n = group_size * k;
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, n);
    Grouping grouping;
    grouping.groups.resize(k);
    for (int i = 0; i < n; ++i) grouping.groups[i % k].push_back(i);

    SkillVector fast = skills;
    SkillVector naive = skills;
    LinearGain gain(0.05 + 0.9 * rng.NextDouble());
    auto fast_gain =
        ApplyRound(InteractionMode::kClique, grouping, gain, fast);
    auto naive_gain =
        ApplyRoundNaive(InteractionMode::kClique, grouping, gain, naive);
    ASSERT_TRUE(fast_gain.ok());
    ASSERT_TRUE(naive_gain.ok());
    EXPECT_NEAR(fast_gain.value(), naive_gain.value(), 1e-9);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(fast[i], naive[i], 1e-9);
    }
  }
}

// Ties: rank order among equal skills is id-deterministic, and the clique
// denominators follow rank (not strict dominance), matching Eq. 2.
TEST(CliqueModeTest, TiesAreDeterministic) {
  SkillVector skills = {5.0, 3.0, 3.0};
  Grouping grouping({{0, 1, 2}});
  LinearGain gain(0.5);
  ASSERT_TRUE(
      ApplyRound(InteractionMode::kClique, grouping, gain, skills).ok());
  EXPECT_DOUBLE_EQ(skills[0], 5.0);
  EXPECT_DOUBLE_EQ(skills[1], 4.0);   // rank 2: f(2)/1 = 1
  EXPECT_DOUBLE_EQ(skills[2], 3.5);   // rank 3: (f(2)+f(0))/2 = 0.5
}

TEST(InteractionTest, SingletonGroupsAreNoOps) {
  SkillVector skills = {1.0, 2.0, 3.0};
  Grouping grouping({{0}, {1}, {2}});
  LinearGain gain(0.5);
  auto result = ApplyRound(InteractionMode::kStar, grouping, gain, skills);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 0.0);
  EXPECT_EQ(skills, (SkillVector{1.0, 2.0, 3.0}));
}

TEST(InteractionTest, UnequalGroupSizesSupported) {
  SkillVector skills = {1.0, 2.0, 3.0, 4.0, 5.0};
  Grouping grouping({{0, 1, 4}, {2, 3}});
  LinearGain gain(0.5);
  auto result = ApplyRound(InteractionMode::kStar, grouping, gain, skills);
  ASSERT_TRUE(result.ok());
  // Group 1: 1->3, 2->3.5 (teacher 5); group 2: 3->3.5 (teacher 4).
  EXPECT_DOUBLE_EQ(skills[0], 3.0);
  EXPECT_DOUBLE_EQ(skills[1], 3.5);
  EXPECT_DOUBLE_EQ(skills[2], 3.5);
  EXPECT_DOUBLE_EQ(result.value(), 2.0 + 1.5 + 0.5);
}

TEST(InteractionTest, InvalidGroupingRejected) {
  SkillVector skills = {1.0, 2.0, 3.0};
  LinearGain gain(0.5);
  Grouping missing_member({{0, 1}});
  EXPECT_FALSE(
      ApplyRound(InteractionMode::kStar, missing_member, gain, skills).ok());
  Grouping duplicate({{0, 1}, {1, 2}});
  EXPECT_FALSE(
      ApplyRound(InteractionMode::kStar, duplicate, gain, skills).ok());
}

TEST(InteractionTest, EvaluateRoundGainDoesNotMutate) {
  SkillVector skills = {0.9, 0.5, 0.3};
  Grouping grouping({{0, 1, 2}});
  LinearGain gain(0.5);
  auto result =
      EvaluateRoundGain(InteractionMode::kStar, grouping, gain, skills);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 0.5);
  EXPECT_EQ(skills, (SkillVector{0.9, 0.5, 0.3}));
}

TEST(InteractionModeTest, NamesRoundTrip) {
  EXPECT_EQ(InteractionModeName(InteractionMode::kStar), "star");
  EXPECT_EQ(InteractionModeName(InteractionMode::kClique), "clique");
  EXPECT_EQ(ParseInteractionMode("star").value(), InteractionMode::kStar);
  EXPECT_EQ(ParseInteractionMode("clique").value(),
            InteractionMode::kClique);
  EXPECT_FALSE(ParseInteractionMode("ring").ok());
}

}  // namespace
}  // namespace tdg
