// Property tests for the parallel exact solvers and the SA delta objective.
//
// The determinism contract (DESIGN.md): for every thread count, the
// work-stealing parallel brute force and branch-and-bound return the SAME
// optimum as the serial solver — gain bitwise equal, grouping sequence
// identical — regardless of steal schedule. And simulated annealing's
// O(n/k) delta objective follows a bitwise-identical trajectory to full
// O(n) re-evaluation. These tests hammer that contract across ~200
// randomized instances plus the degenerate shapes (k = 1, k = n, n % k != 0,
// n = 0, one thread, more threads than subtree tasks).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "baselines/simulated_annealing.h"
#include "core/branch_bound.h"
#include "core/brute_force.h"
#include "core/objective.h"
#include "obs/obs.h"
#include "random/distributions.h"
#include "util/work_steal_queue.h"

namespace tdg {
namespace {

SkillVector RandomSkills(random::Rng& rng, random::SkillDistribution dist,
                         int n) {
  SkillVector skills = random::GenerateSkills(rng, dist, n);
  for (double& s : skills) s += 1e-9;
  return skills;
}

std::string SequenceKey(const std::vector<Grouping>& sequence) {
  std::string key;
  for (const Grouping& grouping : sequence) {
    key += grouping.CanonicalKey();
    key += ";";
  }
  return key;
}

random::SkillDistribution PickDistribution(int trial) {
  switch (trial % 3) {
    case 0:
      return random::SkillDistribution::kUniform;
    case 1:
      return random::SkillDistribution::kLogNormal;
    default:
      return random::SkillDistribution::kZipf;
  }
}

// 120 instances x 2 solvers: the parallel optimum — value AND sequence —
// is bitwise equal to the serial one.
TEST(ParallelSolverPropertyTest, ParallelMatchesSerialBitwise) {
  random::Rng rng(4242);
  for (int trial = 0; trial < 120; ++trial) {
    int n = (trial % 5 == 4) ? 8 : 4 + 2 * static_cast<int>(rng.NextBounded(2));
    int k = 2;
    if (n == 6 && trial % 3 == 0) k = 3;
    if (n == 8 && trial % 2 == 0) k = 4;
    int alpha = (n == 8) ? 1 + static_cast<int>(rng.NextBounded(2))
                         : 1 + static_cast<int>(rng.NextBounded(3));
    double r = 0.05 + 0.9 * rng.NextDouble();
    InteractionMode mode =
        (trial % 2 == 0) ? InteractionMode::kStar : InteractionMode::kClique;
    int threads = 2 + static_cast<int>(rng.NextBounded(7));  // 2..8
    SkillVector skills = RandomSkills(rng, PickDistribution(trial), n);
    LinearGain gain(r);
    SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                 " k=" + std::to_string(k) + " alpha=" + std::to_string(alpha) +
                 " threads=" + std::to_string(threads));

    BruteForceOptions bf_serial;
    auto brute = SolveTdgBruteForce(skills, k, alpha, mode, gain, bf_serial);
    BruteForceOptions bf_parallel;
    bf_parallel.num_threads = threads;
    auto brute_par =
        SolveTdgBruteForce(skills, k, alpha, mode, gain, bf_parallel);
    ASSERT_TRUE(brute.ok()) << brute.status();
    ASSERT_TRUE(brute_par.ok()) << brute_par.status();
    EXPECT_EQ(brute_par->best_total_gain, brute->best_total_gain);
    EXPECT_EQ(SequenceKey(brute_par->best_sequence),
              SequenceKey(brute->best_sequence));
    EXPECT_EQ(brute_par->sequences_explored, brute->sequences_explored);
    EXPECT_EQ(brute_par->threads_used, threads);

    BranchBoundOptions bb_serial;
    auto bounded = SolveTdgBranchBound(skills, k, alpha, mode, gain, bb_serial);
    BranchBoundOptions bb_parallel;
    bb_parallel.num_threads = threads;
    auto bounded_par =
        SolveTdgBranchBound(skills, k, alpha, mode, gain, bb_parallel);
    ASSERT_TRUE(bounded.ok()) << bounded.status();
    ASSERT_TRUE(bounded_par.ok()) << bounded_par.status();
    EXPECT_EQ(bounded_par->best_total_gain, bounded->best_total_gain);
    EXPECT_EQ(SequenceKey(bounded_par->best_sequence),
              SequenceKey(bounded->best_sequence));
    // Both exact solvers agree with each other (up to float noise between
    // different traversal orders).
    EXPECT_NEAR(bounded->best_total_gain, brute->best_total_gain, 1e-9);
  }
}

// 40 instances: SA with delta evaluation returns the identical grouping
// (member for member) as SA with full re-evaluation under the same seed,
// while spending only O(n/k)-sized evaluations after the first.
TEST(ParallelSolverPropertyTest, SaDeltaTrajectoryMatchesFullBitwise) {
  random::Rng rng(777);
  const struct Shape {
    int n, k;
  } shapes[] = {{8, 2}, {12, 3}, {12, 4}, {20, 5}, {24, 6}};
  for (int trial = 0; trial < 40; ++trial) {
    const Shape& shape = shapes[trial % 5];
    InteractionMode mode =
        (trial % 2 == 0) ? InteractionMode::kStar : InteractionMode::kClique;
    double r = 0.05 + 0.9 * rng.NextDouble();
    uint64_t seed = 1000 + trial;
    SkillVector skills = RandomSkills(rng, PickDistribution(trial), shape.n);
    LinearGain gain(r);
    SCOPED_TRACE("trial=" + std::to_string(trial) +
                 " n=" + std::to_string(shape.n) +
                 " k=" + std::to_string(shape.k));

    baselines::SimulatedAnnealingOptions options;
    options.iterations = 300;

    options.delta_evaluation = false;
    baselines::SimulatedAnnealingPolicy sa_full(mode, gain, seed, options);
    auto grouping_full = sa_full.FormGroups(skills, shape.k);
    ASSERT_TRUE(grouping_full.ok()) << grouping_full.status();

    options.delta_evaluation = true;
    baselines::SimulatedAnnealingPolicy sa_delta(mode, gain, seed, options);
    auto grouping_delta = sa_delta.FormGroups(skills, shape.k);
    ASSERT_TRUE(grouping_delta.ok()) << grouping_delta.status();

    EXPECT_TRUE(grouping_full.value() == grouping_delta.value());
    EXPECT_EQ(grouping_full->CanonicalKey(), grouping_delta->CanonicalKey());
    // The delta path performs exactly one full evaluation (the initial
    // grouping); every proposal costs two group evaluations instead.
    EXPECT_EQ(sa_delta.last_full_evaluations(), 1);
    EXPECT_EQ(sa_delta.last_delta_evaluations(), options.iterations);
    EXPECT_EQ(sa_full.last_delta_evaluations(), 0);
  }
}

// 40 instances: EvaluateRoundGainDelta agrees with a from-scratch
// re-evaluation of the swapped grouping, and the per-group decomposition
// sums back to EvaluateRoundGain bitwise.
TEST(ParallelSolverPropertyTest, DeltaObjectiveMatchesFullReevaluation) {
  random::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    int k = 2 + static_cast<int>(rng.NextBounded(4));      // 2..5
    int size = 2 + static_cast<int>(rng.NextBounded(4));   // 2..5
    int n = k * size;
    InteractionMode mode =
        (trial % 2 == 0) ? InteractionMode::kStar : InteractionMode::kClique;
    SkillVector skills = RandomSkills(rng, PickDistribution(trial), n);
    LinearGain gain(0.05 + 0.9 * rng.NextDouble());
    SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                 " k=" + std::to_string(k));

    std::vector<std::vector<int>> groups(k);
    for (int i = 0; i < n; ++i) groups[i % k].push_back(i);
    Grouping grouping(groups);

    // Per-group decomposition: summing EvaluateGroupGain over groups in
    // order reproduces EvaluateRoundGain's accumulation exactly.
    auto full = EvaluateRoundGain(mode, grouping, gain, skills);
    ASSERT_TRUE(full.ok()) << full.status();
    double sum = 0.0;
    for (int g = 0; g < k; ++g) {
      auto group_gain =
          EvaluateGroupGain(mode, grouping.groups[g], gain, skills);
      ASSERT_TRUE(group_gain.ok()) << group_gain.status();
      sum += group_gain.value();
    }
    EXPECT_EQ(sum, full.value());

    int ga = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(k)));
    int gb = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(k - 1)));
    if (gb >= ga) ++gb;
    int ia = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(size)));
    int ib = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(size)));
    auto delta =
        EvaluateRoundGainDelta(mode, grouping, gain, skills, ga, ia, gb, ib);
    ASSERT_TRUE(delta.ok()) << delta.status();

    std::vector<std::vector<int>> swapped = groups;
    std::swap(swapped[ga][ia], swapped[gb][ib]);
    auto full_after =
        EvaluateRoundGain(mode, Grouping(swapped), gain, skills);
    ASSERT_TRUE(full_after.ok()) << full_after.status();
    EXPECT_NEAR(full.value() + delta->delta, full_after.value(), 1e-9);
    // The delta's own group terms decompose the same way.
    EXPECT_NEAR(delta->delta, (delta->new_gain_a + delta->new_gain_b) -
                                  (delta->old_gain_a + delta->old_gain_b),
                1e-15);
  }
}

TEST(ParallelSolverEdgeCaseTest, SingleGroupKEqualsOne) {
  // k = 1: exactly one grouping (everyone together); every sequence is the
  // same, so serial and parallel trivially agree and the frontier has a
  // single subtree task — fewer tasks than threads.
  SkillVector skills = {1.0, 2.0, 3.0, 4.0};
  LinearGain gain(0.5);
  BruteForceOptions bf;
  bf.num_threads = 8;
  auto brute =
      SolveTdgBruteForce(skills, 1, 2, InteractionMode::kStar, gain, bf);
  ASSERT_TRUE(brute.ok()) << brute.status();
  EXPECT_EQ(brute->sequences_explored, 1);

  BranchBoundOptions bb;
  bb.num_threads = 8;
  auto bounded =
      SolveTdgBranchBound(skills, 1, 2, InteractionMode::kStar, gain, bb);
  ASSERT_TRUE(bounded.ok()) << bounded.status();
  EXPECT_EQ(bounded->best_total_gain, brute->best_total_gain);
  EXPECT_EQ(SequenceKey(bounded->best_sequence),
            SequenceKey(brute->best_sequence));
}

TEST(ParallelSolverEdgeCaseTest, SingletonGroupsKEqualsN) {
  // k = n: every group is a singleton, so no interaction happens and the
  // optimal total gain is exactly zero in every round.
  SkillVector skills = {1.0, 2.0, 3.0};
  LinearGain gain(0.5);
  for (int threads : {1, 4}) {
    BranchBoundOptions bb;
    bb.num_threads = threads;
    auto bounded =
        SolveTdgBranchBound(skills, 3, 2, InteractionMode::kClique, gain, bb);
    ASSERT_TRUE(bounded.ok()) << bounded.status();
    EXPECT_EQ(bounded->best_total_gain, 0.0);
    BruteForceOptions bf;
    bf.num_threads = threads;
    auto brute =
        SolveTdgBruteForce(skills, 3, 2, InteractionMode::kClique, gain, bf);
    ASSERT_TRUE(brute.ok()) << brute.status();
    EXPECT_EQ(brute->best_total_gain, 0.0);
  }
}

TEST(ParallelSolverEdgeCaseTest, RejectsIndivisibleAndEmptyPopulations) {
  LinearGain gain(0.5);
  for (int threads : {1, 4}) {
    BranchBoundOptions bb;
    bb.num_threads = threads;
    BruteForceOptions bf;
    bf.num_threads = threads;

    // n = 5, k = 2 does not divide.
    SkillVector odd = {1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_FALSE(
        SolveTdgBranchBound(odd, 2, 1, InteractionMode::kStar, gain, bb).ok());
    EXPECT_FALSE(
        SolveTdgBruteForce(odd, 2, 1, InteractionMode::kStar, gain, bf).ok());

    // n = 0 is rejected outright.
    SkillVector empty;
    EXPECT_FALSE(
        SolveTdgBranchBound(empty, 1, 1, InteractionMode::kStar, gain, bb)
            .ok());
    EXPECT_FALSE(
        SolveTdgBruteForce(empty, 1, 1, InteractionMode::kStar, gain, bf)
            .ok());
  }
}

TEST(ParallelSolverEdgeCaseTest, ZeroRoundsAndExplicitSingleThread) {
  SkillVector skills = {1.0, 2.0, 3.0, 4.0};
  LinearGain gain(0.5);
  for (int threads : {0, 1, 6}) {
    BranchBoundOptions bb;
    bb.num_threads = threads;
    auto bounded =
        SolveTdgBranchBound(skills, 2, 0, InteractionMode::kStar, gain, bb);
    ASSERT_TRUE(bounded.ok()) << bounded.status();
    EXPECT_EQ(bounded->best_total_gain, 0.0);
    EXPECT_TRUE(bounded->best_sequence.empty());

    BruteForceOptions bf;
    bf.num_threads = threads;
    auto brute =
        SolveTdgBruteForce(skills, 2, 0, InteractionMode::kStar, gain, bf);
    ASSERT_TRUE(brute.ok()) << brute.status();
    EXPECT_EQ(brute->best_total_gain, 0.0);
    EXPECT_TRUE(brute->best_sequence.empty());
    // alpha = 0 leaves a single (empty) sequence.
    EXPECT_EQ(brute->sequences_explored, 1);
  }
}

TEST(ParallelSolverEdgeCaseTest, ManyMoreThreadsThanSubtreeTasks) {
  // n = 4, k = 2 has 3 groupings; alpha = 1 seeds at most 3 subtree tasks
  // while 16 workers contend for them. Most workers find the queue empty.
  SkillVector skills = {0.5, 1.5, 2.5, 3.5};
  LinearGain gain(0.4);
  BranchBoundOptions bb_serial;
  auto serial =
      SolveTdgBranchBound(skills, 2, 1, InteractionMode::kStar, gain,
                          bb_serial);
  BranchBoundOptions bb;
  bb.num_threads = 16;
  auto parallel =
      SolveTdgBranchBound(skills, 2, 1, InteractionMode::kStar, gain, bb);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(parallel->best_total_gain, serial->best_total_gain);
  EXPECT_EQ(SequenceKey(parallel->best_sequence),
            SequenceKey(serial->best_sequence));
  EXPECT_LE(parallel->subtree_tasks, 3);
}

// Every task leaves the queue exactly once — as a pop or a steal — and
// every worker's exit registers at least one exhausted scan, across thread
// counts and task/worker ratios (incl. more workers than tasks).
TEST(WorkStealQueueCounterTest, PopsPlusStealsAccountForEveryTask) {
  for (auto [num_tasks, num_workers] :
       {std::pair<int, int>{1000, 4}, {7, 3}, {3, 16}, {0, 2}, {64, 1}}) {
    util::WorkStealingIndexQueue queue(num_tasks, num_workers);
    std::vector<std::vector<int>> taken(num_workers);
    std::vector<std::thread> workers;
    workers.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
      workers.emplace_back([&queue, &taken, w] {
        for (int task = queue.Next(w); task >= 0; task = queue.Next(w)) {
          taken[w].push_back(task);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();

    std::vector<int> all;
    for (const std::vector<int>& per_worker : taken) {
      all.insert(all.end(), per_worker.begin(), per_worker.end());
    }
    ASSERT_EQ(static_cast<int>(all.size()), num_tasks)
        << num_tasks << " tasks / " << num_workers << " workers";
    EXPECT_EQ(queue.pop_count() + queue.steal_count(), num_tasks);
    EXPECT_GE(queue.pop_count(), 0);
    EXPECT_GE(queue.steal_count(), 0);
    // Each worker observed the empty queue at least once on its way out.
    EXPECT_GE(queue.exhaust_count(), num_workers);
  }
}

// The obs instrumentation routes queue drain totals into the registry:
// after a parallel solve, pops + steals in the registry cover the solver's
// subtree tasks, the steal counter matches the solver's own accounting,
// and every queue teardown is counted.
TEST(WorkStealQueueCounterTest, InstrumentationFeedsMetricsRegistry) {
  const bool metrics_were_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::InstallWorkStealQueueInstrumentation();

  auto counter_value = [](const char* name) {
    return obs::MetricsRegistry::Global().GetCounter(name).Value();
  };
  const int64_t pops_before = counter_value("work_steal_queue/pops");
  const int64_t steals_before = counter_value("work_steal_queue/steals");
  const int64_t exhausts_before =
      counter_value("work_steal_queue/exhausts");
  const int64_t drained_before =
      counter_value("work_steal_queue/queues_drained");

  random::Rng rng(777);
  SkillVector skills = RandomSkills(
      rng, random::SkillDistribution::kLogNormal, 8);
  LinearGain gain(0.5);
  BranchBoundOptions options;
  options.num_threads = 4;
  auto result =
      SolveTdgBranchBound(skills, 2, 2, InteractionMode::kStar, gain,
                          options);
  ASSERT_TRUE(result.ok()) << result.status();

  const int64_t pops = counter_value("work_steal_queue/pops") - pops_before;
  const int64_t steals =
      counter_value("work_steal_queue/steals") - steals_before;
  const int64_t exhausts =
      counter_value("work_steal_queue/exhausts") - exhausts_before;
  const int64_t drained =
      counter_value("work_steal_queue/queues_drained") - drained_before;

  EXPECT_EQ(drained, 1);  // one queue per parallel solve
  EXPECT_EQ(pops + steals, result->subtree_tasks);
  EXPECT_EQ(steals, result->steal_count);
  EXPECT_GE(exhausts, options.num_threads);  // every worker's exit scan

  obs::SetMetricsEnabled(metrics_were_enabled);
}

}  // namespace
}  // namespace tdg
