// Shared fixtures for the crash-safe sweep test layer (sweep_shard_test,
// sweep_torn_write_test, sweep_crash_test). Header-only; included from the
// *_test.cc files that tests/CMakeLists.txt globs into tdg_tests.
#ifndef TDG_TESTS_SWEEP_SHARD_TEST_UTIL_H_
#define TDG_TESTS_SWEEP_SHARD_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "exp/sweep.h"
#include "exp/sweep_config.h"
#include "obs/obs.h"

namespace tdg::test {

/// Disables the tdg::obs metrics registry for the test's lifetime so
/// SweepCell::mean_micros is deterministically 0 — the precondition for
/// byte-identical output comparisons.
class MetricsOffGuard {
 public:
  MetricsOffGuard() : was_enabled_(obs::MetricsEnabled()) {
    obs::SetMetricsEnabled(false);
  }
  ~MetricsOffGuard() { obs::SetMetricsEnabled(was_enabled_); }

 private:
  bool was_enabled_;
};

/// A small but non-trivial sweep: 8 grid points × 2 policies = 16 cells,
/// fast enough to run dozens of times per test yet wide enough that shards
/// and crash cut points land in interesting places.
inline exp::SweepConfig TinyConfig(int threads = 1) {
  exp::SweepConfig config;
  config.name = "shard-test";
  config.policies = {"DyGroups-Star", "Random-Assignment"};
  config.n_values = {12, 24};
  config.k_values = {3};
  config.alpha_values = {2};
  config.r_values = {0.25, 0.5};
  config.modes = {InteractionMode::kStar, InteractionMode::kClique};
  config.distributions = {random::SkillDistribution::kLogNormal};
  config.runs = 2;
  config.seed = 7;
  config.threads = threads;
  return config;
}

/// A fresh empty scratch directory under the system temp dir. Leaked on
/// purpose (tiny files; debuggability beats cleanliness when a crash test
/// fails).
inline std::string MakeScratchDir() {
  std::string tmpl = ::testing::TempDir() + "tdg_sweep_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr) << "mkdtemp failed for " << tmpl;
  return dir != nullptr ? std::string(dir) : std::string(".");
}

/// The reference bytes an uninterrupted monolithic run produces.
inline std::string CsvBytes(const exp::SweepResult& result) {
  return result.ToCsv().ToString();
}
inline std::string JsonBytes(const exp::SweepResult& result) {
  return result.ToJson().SerializePretty() + "\n";
}

}  // namespace tdg::test

#endif  // TDG_TESTS_SWEEP_SHARD_TEST_UTIL_H_
