#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/dygroups.h"
#include "sim/amt_experiment.h"
#include "sim/assessment.h"
#include "sim/retention.h"
#include "sim/worker.h"
#include "stats/descriptive.h"

namespace tdg::sim {
namespace {

TEST(MakePopulationTest, SkillsWithinBounds) {
  random::Rng rng(1);
  PopulationParams params;
  params.size = 500;
  std::vector<SimulatedWorker> workers = MakePopulation(params, rng);
  ASSERT_EQ(workers.size(), 500u);
  for (const auto& w : workers) {
    EXPECT_GE(w.latent_skill, params.skill_floor);
    EXPECT_LE(w.latent_skill, params.skill_ceil);
    EXPECT_TRUE(w.active);
  }
  std::vector<double> latent;
  for (const auto& w : workers) latent.push_back(w.latent_skill);
  EXPECT_NEAR(stats::Mean(latent), params.skill_mean, 0.03);
}

TEST(SplitMatchedPopulationsTest, PopulationsHaveMatchedMeans) {
  random::Rng rng(2);
  PopulationParams params;
  params.size = 128;
  std::vector<SimulatedWorker> pool = MakePopulation(params, rng);
  auto populations = SplitMatchedPopulations(pool, 4, rng);
  ASSERT_EQ(populations.size(), 4u);
  std::vector<double> means;
  for (const auto& population : populations) {
    ASSERT_EQ(population.size(), 32u);
    std::vector<double> latent;
    for (const auto& w : population) latent.push_back(w.latent_skill);
    means.push_back(stats::Mean(latent));
  }
  // Stratified split: means must be nearly identical.
  double spread = stats::Max(means) - stats::Min(means);
  EXPECT_LT(spread, 0.01);
}

TEST(AssessWorkerTest, UnbiasedAndBounded) {
  random::Rng rng(3);
  SimulatedWorker worker;
  worker.latent_skill = 0.7;
  double total = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    double score = AssessWorker(worker, 10, rng);
    EXPECT_GT(score, 0.0);
    EXPECT_LE(score, 1.0);
    total += score;
  }
  // Slight positive bias from the zero-score floor is < 0.001 at p=0.7.
  EXPECT_NEAR(total / kTrials, 0.7, 0.01);
}

TEST(AssessWorkerTest, ZeroKnowledgeFloorsAtHalfQuestion) {
  random::Rng rng(4);
  SimulatedWorker hopeless;
  hopeless.latent_skill = 0.0;
  EXPECT_DOUBLE_EQ(AssessWorker(hopeless, 10, rng), 0.05);
}

TEST(RetentionModelTest, HigherGainMeansLowerDropout) {
  RetentionModel model(RetentionParams{});
  EXPECT_GT(model.DropoutProbability(0.0),
            model.DropoutProbability(0.1));
  EXPECT_GE(model.DropoutProbability(10.0),
            model.params().min_dropout);
  EXPECT_LE(model.DropoutProbability(-10.0),
            model.params().max_dropout);
}

TEST(RetentionModelTest, SurvivalFrequencyMatchesProbability) {
  RetentionParams params;
  params.base_dropout = 0.3;
  params.gain_weight = 0.0;
  RetentionModel model(params);
  random::Rng rng(5);
  int survived = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (model.SurvivesRound(0.0, rng)) ++survived;
  }
  EXPECT_NEAR(static_cast<double>(survived) / kTrials, 0.7, 0.01);
}

TEST(RunAmtPopulationTest, ProducesRoundsAndGains) {
  random::Rng rng(6);
  PopulationParams params;
  params.size = 32;
  std::vector<SimulatedWorker> workers = MakePopulation(params, rng);
  DyGroupsStarPolicy policy;
  AmtConfig config;
  config.num_rounds = 3;
  auto result = RunAmtPopulation(workers, policy, config, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->policy_name, "DyGroups-Star");
  EXPECT_EQ(result->initial_size, 32);
  EXPECT_FALSE(result->rounds.empty());
  for (const AmtRound& round : result->rounds) {
    EXPECT_GT(round.participants, 0);
    EXPECT_EQ(round.participants % config.group_size, 0);
    EXPECT_GE(round.retention_fraction, 0.0);
    EXPECT_LE(round.retention_fraction, 1.0);
    // Latent learning can only help.
    EXPECT_GE(round.aggregate_latent_gain, 0.0);
  }
  EXPECT_EQ(result->per_worker_gain.size(), 32u);
}

TEST(RunAmtPopulationTest, RetentionFractionIsNonIncreasing) {
  random::Rng rng(7);
  PopulationParams params;
  params.size = 48;
  std::vector<SimulatedWorker> workers = MakePopulation(params, rng);
  DyGroupsStarPolicy policy;
  AmtConfig config;
  config.num_rounds = 5;
  auto result = RunAmtPopulation(workers, policy, config, rng);
  ASSERT_TRUE(result.ok());
  double previous = 1.0;
  for (const AmtRound& round : result->rounds) {
    EXPECT_LE(round.retention_fraction, previous + 1e-12);
    previous = round.retention_fraction;
  }
}

TEST(RunAmtPopulationTest, RejectsBadConfig) {
  random::Rng rng(8);
  std::vector<SimulatedWorker> workers =
      MakePopulation(PopulationParams{}, rng);
  DyGroupsStarPolicy policy;
  AmtConfig config;
  config.group_size = 1;
  EXPECT_FALSE(RunAmtPopulation(workers, policy, config, rng).ok());
  config.group_size = 4;
  config.num_rounds = 0;
  EXPECT_FALSE(RunAmtPopulation(workers, policy, config, rng).ok());
}

TEST(RunExperimentTest, Experiment1ShapeMatchesPaper) {
  auto result = RunExperiment(Experiment1Config(/*seed=*/42));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->populations.size(), 2u);
  EXPECT_EQ(result->populations[0].policy_name, "DyGroups-Star");
  EXPECT_EQ(result->populations[1].policy_name, "k-means");
  EXPECT_EQ(result->populations[0].initial_size, 32);
  // Observation I: pooled learning gain positive at 75% confidence.
  EXPECT_GT(result->pooled_gain_ci.lower, 0.0);
}

TEST(RunExperimentTest, DyGroupsBeatsKMeansOnAverageAcrossSeeds) {
  // Individual deployments are noisy (10-question quizzes); average a few.
  int wins = 0;
  constexpr int kSeeds = 5;
  for (uint64_t seed = 100; seed < 100 + kSeeds; ++seed) {
    auto result = RunExperiment(Experiment1Config(seed));
    ASSERT_TRUE(result.ok());
    if (result->populations[0].total_observed_gain >
        result->populations[1].total_observed_gain) {
      ++wins;
    }
  }
  EXPECT_GE(wins, (kSeeds + 1) / 2);
}

TEST(RunExperimentTest, Experiment2HasFourPopulations) {
  auto result = RunExperiment(Experiment2Config(/*seed=*/7));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->populations.size(), 4u);
  for (const auto& population : result->populations) {
    EXPECT_EQ(population.initial_size, 32);
    EXPECT_LE(population.rounds.size(), 2u);
  }
  EXPECT_EQ(result->first_vs_other.size(), 4u);
}

TEST(RunExperimentTest, RejectsBadSplit) {
  ExperimentConfig config = Experiment1Config(1);
  config.total_workers = 63;  // not divisible by 2
  EXPECT_FALSE(RunExperiment(config).ok());
  config.total_workers = 64;
  config.policy_names.clear();
  EXPECT_FALSE(RunExperiment(config).ok());
}

}  // namespace
}  // namespace tdg::sim
