// Flight recorder tests (obs/flight_recorder.h, DESIGN.md §12): ring
// arithmetic, the mmap substrate, record → decode roundtrips, wraparound
// and drop accounting, torn-record tolerance, restart-onto-the-same-path
// safety, and the end-to-end crash contract — a child shard killed by the
// fault hook must leave a decodable black box whose cell events match the
// checkpoint it wrote.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/sweep_shard.h"
#include "obs/flight_recorder.h"
#include "sweep_shard_test_util.h"
#include "util/file_util.h"
#include "util/mmap_file.h"
#include "util/record_ring.h"

#ifndef TDG_SWEEP_SHARD_CHILD_BIN
#error "TDG_SWEEP_SHARD_CHILD_BIN must be defined by tests/CMakeLists.txt"
#endif

namespace tdg::obs {
namespace {

using test::MakeScratchDir;
using test::TinyConfig;

FlightRecorder::Options SmallOptions(const std::string& path,
                                     std::size_t ring_bytes = 4096,
                                     int max_rings = 8) {
  FlightRecorder::Options options;
  options.path = path;
  options.ring_bytes = ring_bytes;
  options.max_rings = max_rings;
  return options;
}

// --- ring arithmetic -------------------------------------------------------

TEST(RecordRingTest, CapacityValidation) {
  EXPECT_TRUE(util::IsValidRecordRingCapacity(64));
  EXPECT_TRUE(util::IsValidRecordRingCapacity(1 << 16));
  EXPECT_FALSE(util::IsValidRecordRingCapacity(0));
  EXPECT_FALSE(util::IsValidRecordRingCapacity(32));    // < one record
  EXPECT_FALSE(util::IsValidRecordRingCapacity(96));    // not a power of two
  EXPECT_FALSE(util::IsValidRecordRingCapacity(1000));  // not a power of two
}

TEST(RecordRingTest, AppendThenViewRoundtripsWithoutWrap) {
  constexpr std::size_t kCapacity = 512;  // 8 records
  alignas(64) std::byte arena[kCapacity] = {};
  std::atomic<std::uint64_t> cursor{0};
  util::RecordRingWriter writer{arena, kCapacity, &cursor};
  ASSERT_TRUE(writer.valid());

  for (std::uint64_t i = 0; i < 5; ++i) {
    std::uint64_t record[8] = {i, i * 10};
    writer.Append(record);
  }

  util::RecordRingView view{arena, kCapacity, cursor.load()};
  ASSERT_EQ(view.record_count(), 5u);
  EXPECT_EQ(view.records_written(), 5u);
  for (std::size_t i = 0; i < view.record_count(); ++i) {
    std::uint64_t record[8];
    std::memcpy(record, view.record(i), sizeof(record));
    EXPECT_EQ(record[0], i);
    EXPECT_EQ(record[1], i * 10);
  }
}

TEST(RecordRingTest, WrapKeepsNewestWindowOldestFirst) {
  constexpr std::size_t kCapacity = 256;  // 4 records
  alignas(64) std::byte arena[kCapacity] = {};
  std::atomic<std::uint64_t> cursor{0};
  util::RecordRingWriter writer{arena, kCapacity, &cursor};

  for (std::uint64_t i = 0; i < 11; ++i) {
    std::uint64_t record[8] = {i};
    writer.Append(record);
  }

  util::RecordRingView view{arena, kCapacity, cursor.load()};
  ASSERT_EQ(view.record_count(), 4u);
  EXPECT_EQ(view.records_written(), 11u);
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t record[8];
    std::memcpy(record, view.record(i), sizeof(record));
    EXPECT_EQ(record[0], 7 + i);  // survivors are 7, 8, 9, 10
  }
}

// --- mmap substrate --------------------------------------------------------

TEST(MmapFileTest, CreateWriteCloseLeavesBytesOnDisk) {
  const std::string path = MakeScratchDir() + "/map.bin";
  auto file = util::MmapFile::CreateReadWrite(path, 4096);
  ASSERT_TRUE(file.ok()) << file.status();
  ASSERT_TRUE(file->valid());
  ASSERT_EQ(file->size(), 4096u);
  EXPECT_GE(file->fd(), 0);
  std::memcpy(file->data(), "persisted", 9);
  EXPECT_EQ(file->Sync(), 0);
  file->Close();
  file->Close();  // idempotent

  auto bytes = util::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  ASSERT_EQ(bytes->size(), 4096u);
  EXPECT_EQ(bytes->substr(0, 9), "persisted");
  EXPECT_EQ((*bytes)[9], '\0');  // fresh mapping reads as zeros
}

TEST(MmapFileTest, RejectsUnwritablePath) {
  auto file = util::MmapFile::CreateReadWrite(
      "/nonexistent-dir-tdg/map.bin", 4096);
  EXPECT_FALSE(file.ok());
}

// --- recorder roundtrip ----------------------------------------------------

TEST(FlightRecorderTest, StartRejectsBadGeometry) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.Start(SmallOptions("")).ok());
  const std::string path = MakeScratchDir() + "/bb.bin";
  EXPECT_FALSE(recorder.Start(SmallOptions(path, /*ring_bytes=*/1000)).ok());
  EXPECT_FALSE(recorder.Start(SmallOptions(path, /*ring_bytes=*/32)).ok());
  EXPECT_FALSE(
      recorder.Start(SmallOptions(path, 4096, /*max_rings=*/0)).ok());
  EXPECT_FALSE(
      recorder.Start(SmallOptions(path, 4096, /*max_rings=*/5000)).ok());
  EXPECT_FALSE(recorder.active());
}

TEST(FlightRecorderTest, RecordDecodeRoundtrip) {
  const std::string path = MakeScratchDir() + "/bb.bin";
  FlightRecorder& recorder = FlightRecorder::Global();
  ASSERT_TRUE(recorder.Start(SmallOptions(path)).ok());
  EXPECT_TRUE(recorder.active());
  EXPECT_EQ(recorder.path(), path);

  recorder.Record(BlackboxEventType::kRoundEnd, {0.0, 1.5, 1.5});
  recorder.Record(BlackboxEventType::kRoundEnd, {1.0, 2.5, 4.0});
  recorder.Record(BlackboxEventType::kGroupChurn, {1.0, 7.0, 24.0});
  recorder.Stop();
  EXPECT_FALSE(recorder.active());

  auto dump = ReadBlackbox(path);
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_TRUE(dump->clean_shutdown);
  EXPECT_EQ(dump->rings_claimed, 1);
  EXPECT_EQ(dump->dropped, 0u);
  EXPECT_EQ(dump->overwritten, 0u);
  EXPECT_EQ(dump->torn, 0u);
  ASSERT_EQ(dump->events.size(), 3u);
  EXPECT_GT(dump->start_unix_ms, 0);

  // Timestamps are monotone, so decode order is record order.
  EXPECT_EQ(dump->events[0].type, BlackboxEventType::kRoundEnd);
  EXPECT_DOUBLE_EQ(dump->events[0].values[1], 1.5);
  EXPECT_EQ(dump->events[2].type, BlackboxEventType::kGroupChurn);
  EXPECT_DOUBLE_EQ(dump->events[2].values[1], 7.0);
  EXPECT_LE(dump->events[0].ts_micros, dump->events[1].ts_micros);

  const std::string json =
      BlackboxEventToJson(dump->events[2]).Serialize();
  EXPECT_NE(json.find("\"event\":\"group_churn\""), std::string::npos);
  EXPECT_NE(json.find("\"moved\":7"), std::string::npos);
  EXPECT_NE(json.find("\"n\":24"), std::string::npos);
}

TEST(FlightRecorderTest, RecordIsDroppedWhenInactive) {
  const std::string path = MakeScratchDir() + "/bb.bin";
  FlightRecorder& recorder = FlightRecorder::Global();
  ASSERT_TRUE(recorder.Start(SmallOptions(path)).ok());
  recorder.Record(BlackboxEventType::kNote, {1.0});
  recorder.Stop();
  recorder.Record(BlackboxEventType::kNote, {2.0});  // after Stop: no-op

  auto dump = ReadBlackbox(path);
  ASSERT_TRUE(dump.ok()) << dump.status();
  ASSERT_EQ(dump->events.size(), 1u);
  EXPECT_DOUBLE_EQ(dump->events[0].values[0], 1.0);
}

TEST(FlightRecorderTest, WrapCountsOverwrittenRecords) {
  const std::string path = MakeScratchDir() + "/bb.bin";
  FlightRecorder& recorder = FlightRecorder::Global();
  // 256-byte ring = 4 records.
  ASSERT_TRUE(recorder.Start(SmallOptions(path, /*ring_bytes=*/256)).ok());
  for (int i = 0; i < 10; ++i) {
    recorder.Record(BlackboxEventType::kNote, {static_cast<double>(i)});
  }
  recorder.Stop();

  auto dump = ReadBlackbox(path);
  ASSERT_TRUE(dump.ok()) << dump.status();
  ASSERT_EQ(dump->events.size(), 4u);
  EXPECT_EQ(dump->overwritten, 6u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(dump->events[i].values[0], 6.0 + i);
  }
}

TEST(FlightRecorderTest, EachThreadGetsItsOwnRing) {
  const std::string path = MakeScratchDir() + "/bb.bin";
  FlightRecorder& recorder = FlightRecorder::Global();
  ASSERT_TRUE(recorder.Start(SmallOptions(path)).ok());

  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &recorder] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        recorder.Record(BlackboxEventType::kNote,
                        {static_cast<double>(t), static_cast<double>(i)});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  recorder.Stop();

  auto dump = ReadBlackbox(path);
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_EQ(dump->rings_claimed, kThreads);
  EXPECT_EQ(dump->dropped, 0u);
  ASSERT_EQ(dump->events.size(),
            static_cast<std::size_t>(kThreads * kEventsPerThread));
  // Every thread's full sequence survives, attributed to a distinct tid.
  std::vector<int> counts(kThreads, 0);
  std::vector<std::uint32_t> tids(kThreads, 0);
  for (const BlackboxEvent& event : dump->events) {
    const int t = static_cast<int>(event.values[0]);
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    if (counts[t] == 0) {
      tids[t] = event.tid;
    } else {
      EXPECT_EQ(event.tid, tids[t]);
    }
    ++counts[t];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(counts[t], kEventsPerThread);
}

TEST(FlightRecorderTest, ThreadsBeyondRingQuotaDropCounted) {
  const std::string path = MakeScratchDir() + "/bb.bin";
  FlightRecorder& recorder = FlightRecorder::Global();
  ASSERT_TRUE(
      recorder.Start(SmallOptions(path, 4096, /*max_rings=*/1)).ok());
  recorder.Record(BlackboxEventType::kNote, {1.0});  // claims the only ring
  std::thread overflow([&recorder] {
    for (int i = 0; i < 5; ++i) {
      recorder.Record(BlackboxEventType::kNote, {2.0});
    }
  });
  overflow.join();
  EXPECT_EQ(recorder.dropped(), 5);
  recorder.Stop();

  auto dump = ReadBlackbox(path);
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_EQ(dump->dropped, 5u);
  ASSERT_EQ(dump->events.size(), 1u);
  EXPECT_DOUBLE_EQ(dump->events[0].values[0], 1.0);
}

TEST(FlightRecorderTest, RestartOntoSamePathStartsAFreshDump) {
  const std::string path = MakeScratchDir() + "/bb.bin";
  FlightRecorder& recorder = FlightRecorder::Global();
  ASSERT_TRUE(recorder.Start(SmallOptions(path)).ok());
  recorder.Record(BlackboxEventType::kNote, {1.0});
  // No Stop: restart must cope with a live epoch, even on the same path.
  ASSERT_TRUE(recorder.Start(SmallOptions(path)).ok());
  recorder.Record(BlackboxEventType::kNote, {2.0});
  recorder.Stop();

  auto dump = ReadBlackbox(path);
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_TRUE(dump->clean_shutdown);
  ASSERT_EQ(dump->events.size(), 1u);  // the first epoch's event is gone
  EXPECT_DOUBLE_EQ(dump->events[0].values[0], 2.0);
}

// --- decoder hardening -----------------------------------------------------

TEST(BlackboxDecodeTest, RejectsGarbageAndTruncation) {
  EXPECT_FALSE(DecodeBlackbox("").ok());
  EXPECT_FALSE(DecodeBlackbox("short").ok());
  EXPECT_FALSE(DecodeBlackbox(std::string(4096, 'x')).ok());
  EXPECT_FALSE(ReadBlackbox("/nonexistent-tdg/bb.bin").ok());

  // A valid header whose file got truncated below its geometry.
  const std::string path = MakeScratchDir() + "/bb.bin";
  FlightRecorder& recorder = FlightRecorder::Global();
  ASSERT_TRUE(recorder.Start(SmallOptions(path)).ok());
  recorder.Stop();
  auto bytes = util::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_FALSE(DecodeBlackbox(
                   std::string_view(*bytes).substr(0, bytes->size() / 2))
                   .ok());
}

TEST(BlackboxDecodeTest, TornRecordIsSkippedAndCounted) {
  const std::string path = MakeScratchDir() + "/bb.bin";
  FlightRecorder& recorder = FlightRecorder::Global();
  ASSERT_TRUE(recorder.Start(SmallOptions(path)).ok());
  recorder.Record(BlackboxEventType::kNote, {1.0});
  recorder.Record(BlackboxEventType::kNote, {2.0});
  recorder.Record(BlackboxEventType::kNote, {3.0});
  recorder.Stop();

  auto bytes = util::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  // Smash the second record's magic: file header (64) + ring 0 header (64)
  // + one record (64) is where it starts.
  std::string corrupted = std::move(bytes).value();
  std::memset(corrupted.data() + 64 + 64 + 64, 0, 8);

  auto dump = DecodeBlackbox(corrupted);
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_EQ(dump->torn, 1u);
  ASSERT_EQ(dump->events.size(), 2u);
  EXPECT_DOUBLE_EQ(dump->events[0].values[0], 1.0);
  EXPECT_DOUBLE_EQ(dump->events[1].values[0], 3.0);
}

// --- crash end-to-end ------------------------------------------------------

// Runs the child shard binary with the flight recorder on; returns its exit
// code (or -1 on abnormal termination).
int RunChildWithBlackbox(const std::string& config_path,
                         const std::string& checkpoint_path,
                         const std::string& blackbox_path,
                         int crash_after_cells) {
  std::string command;
  if (crash_after_cells >= 0) {
    command += "TDG_TEST_CRASH_AFTER_CELLS=" +
               std::to_string(crash_after_cells) + " ";
  }
  command += std::string("'") + TDG_SWEEP_SHARD_CHILD_BIN + "'";
  command += " --config='" + config_path + "'";
  command += " --checkpoint='" + checkpoint_path + "'";
  command += " --blackbox='" + blackbox_path + "'";
  command += " --threads=1 >/dev/null";
  const int status = std::system(command.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

// How many checkpoint cell records reached disk (the file opens with a
// schema/header line, which does not carry a cell_index).
int CheckpointCellCount(const std::string& path) {
  std::ifstream in(path);
  int cells = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"cell_index\"") != std::string::npos) ++cells;
  }
  return cells;
}

TEST(FlightRecorderCrashTest, KilledShardLeavesDecodableBlackbox) {
#if !defined(TDG_TEST_HOOKS)
  GTEST_SKIP() << "fault-injection hooks compiled out (TDG_TEST_HOOKS=OFF)";
#endif
  const std::string dir = MakeScratchDir();
  const std::string config_path = dir + "/sweep.cfg";
  {
    std::ofstream out(config_path);
    ASSERT_TRUE(out.good());
    out << TinyConfig(1).ToText();
  }
  const std::string checkpoint = dir + "/shard.ckpt";
  const std::string blackbox = dir + "/shard.blackbox";

  constexpr int kCrashAfter = 3;
  ASSERT_EQ(RunChildWithBlackbox(config_path, checkpoint, blackbox,
                                 kCrashAfter),
            exp::kCrashHookExitCode)
      << "the fault hook should have killed the child";

  // The dump must decode even though the child died by _Exit with no
  // handler running — the shared mapping is the persistence.
  auto dump = ReadBlackbox(blackbox);
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_FALSE(dump->clean_shutdown) << "a killed child must not look clean";

#if defined(TDG_OBS_DISABLED)
  // The TDG_BLACKBOX instrumentation sites compile out in obs-off builds
  // (only the explicit API keeps working), so there are no semantic events
  // to cross-check — decodability + the missing clean-shutdown flag above
  // are the whole contract here.
#else
  // Semantic events for the in-flight work made it: with one worker
  // thread, the recorded cell_end events are exactly the checkpoint's
  // cells, in order, ending at the crash cut.
  std::vector<long long> cell_ends;
  bool saw_round_event = false;
  for (const BlackboxEvent& event : dump->events) {
    if (event.type == BlackboxEventType::kSweepCellEnd) {
      cell_ends.push_back(static_cast<long long>(event.values[0]));
    }
    if (event.type == BlackboxEventType::kRoundEnd ||
        event.type == BlackboxEventType::kRoundObjective) {
      saw_round_event = true;
    }
  }
  EXPECT_TRUE(saw_round_event)
      << "per-round semantic events should be recorded inside cells";
  ASSERT_EQ(static_cast<int>(cell_ends.size()), kCrashAfter);
  EXPECT_EQ(static_cast<int>(cell_ends.size()),
            CheckpointCellCount(checkpoint));

  // A clean completion of the same shard stamps the clean-shutdown flag.
  const std::string checkpoint2 = dir + "/shard2.ckpt";
  const std::string blackbox2 = dir + "/shard2.blackbox";
  ASSERT_EQ(RunChildWithBlackbox(config_path, checkpoint2, blackbox2,
                                 /*crash_after_cells=*/-1),
            0);
  auto clean_dump = ReadBlackbox(blackbox2);
  ASSERT_TRUE(clean_dump.ok()) << clean_dump.status();
  EXPECT_TRUE(clean_dump->clean_shutdown);
  std::vector<long long> clean_cell_ends;
  for (const BlackboxEvent& event : clean_dump->events) {
    if (event.type == BlackboxEventType::kSweepCellEnd) {
      clean_cell_ends.push_back(static_cast<long long>(event.values[0]));
    }
  }
  EXPECT_EQ(static_cast<int>(clean_cell_ends.size()),
            CheckpointCellCount(checkpoint2));
#endif  // TDG_OBS_DISABLED
}

}  // namespace
}  // namespace tdg::obs
