// Tests for the tdg::obs observability subsystem: metrics registry
// arithmetic, histogram quantiles, trace span nesting, JSON export
// round-trips, thread safety under ParallelFor, and the guarantee that
// observability never perturbs simulation results (sweep determinism).
//
// Every test restores the global observability state it touches
// (metrics enabled, tracing stopped) so test order never matters.

#include "obs/obs.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace tdg::obs {
namespace {

TEST(CounterTest, RegistryReturnsSameHandleAndAccumulates) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("obs_test/counter");
  counter.Reset();
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42);
  // Repeat lookup must alias the same counter.
  Counter& again = MetricsRegistry::Global().GetCounter("obs_test/counter");
  EXPECT_EQ(&again, &counter);
  again.Add(-2);
  EXPECT_EQ(counter.Value(), 40);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(GaugeTest, TracksLastValueAndMaximum) {
  Gauge& gauge = MetricsRegistry::Global().GetGauge("obs_test/gauge");
  gauge.Reset();
  gauge.Set(3.5);
  gauge.Set(9.0);
  gauge.Set(1.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.25);
  EXPECT_DOUBLE_EQ(gauge.Max(), 9.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  EXPECT_DOUBLE_EQ(gauge.Max(), 0.0);
}

TEST(HistogramTest, ExactMomentsAndBucketedQuantiles) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("obs_test/histogram");
  histogram.Reset();
  for (int v = 1; v <= 1000; ++v) histogram.Record(v);

  EXPECT_EQ(histogram.Count(), 1000);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 500500.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 500.5);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 1000.0);

  // Quantiles are bucket-interpolated: relative error is bounded by one
  // log10 bucket (10^(1/16) ≈ 1.155), so allow 16%.
  EXPECT_NEAR(histogram.Quantile(0.50), 500.0, 0.16 * 500.0);
  EXPECT_NEAR(histogram.Quantile(0.95), 950.0, 0.16 * 950.0);
  EXPECT_NEAR(histogram.Quantile(0.99), 990.0, 0.16 * 990.0);
  // Extremes stay within the exact observed range (the top end clamps to
  // Max; the bottom end is bucket-interpolated like any other quantile).
  EXPECT_NEAR(histogram.Quantile(0.0), 1.0, 0.16 * 1.0);
  EXPECT_GE(histogram.Quantile(0.0), histogram.Min());
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 1000.0);

  histogram.Reset();
  EXPECT_EQ(histogram.Count(), 0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
}

TEST(HistogramTest, SingleSampleQuantilesAreExact) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("obs_test/histogram_single");
  histogram.Reset();
  histogram.Record(137.0);
  // One sample has no spread: every quantile is the sample itself, not a
  // point interpolated inside its (geometric, ~15.5% wide) bucket.
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram.Quantile(q), 137.0) << "q=" << q;
  }
}

TEST(HistogramTest, AllSamplesEqualQuantilesAreExact) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("obs_test/histogram_equal");
  histogram.Reset();
  for (int i = 0; i < 100; ++i) histogram.Record(42.0);
  // Min == Max pins the interpolation range to the exact value even though
  // all mass sits in one bucket.
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(histogram.Quantile(q), 42.0) << "q=" << q;
  }
}

TEST(HistogramTest, AllSamplesInOneBucketInterpolateWithinMinMax) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("obs_test/histogram_bucket");
  histogram.Reset();
  // 100.0 and 110.0 share a log10 bucket (bucket width ~15.5%) but differ;
  // quantiles must stay inside the exact observed range and be monotone.
  ASSERT_EQ(Histogram::BucketIndex(100.0), Histogram::BucketIndex(110.0));
  for (int i = 0; i < 50; ++i) {
    histogram.Record(100.0);
    histogram.Record(110.0);
  }
  double previous = histogram.Quantile(0.0);
  for (double q : {0.5, 0.95, 0.99, 1.0}) {
    double value = histogram.Quantile(q);
    EXPECT_GE(value, 100.0) << "q=" << q;
    EXPECT_LE(value, 110.0) << "q=" << q;
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 110.0);
}

TEST(HistogramTest, TwoBucketEdgeQuantilesUseExactExtrema) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("obs_test/histogram_two");
  histogram.Reset();
  histogram.Record(1.0);
  histogram.Record(1000.0);
  // The first populated bucket holds no mass below Min() and the last none
  // above Max(): p99 may not overshoot the largest observation's bucket.
  EXPECT_GE(histogram.Quantile(0.01), 1.0);
  EXPECT_LE(histogram.Quantile(0.99), 1000.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, BucketGeometryCoversEightDecades) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_DOUBLE_EQ(Histogram::BucketLowerBound(0), 0.0);
  // Every bucket maps back to itself through its lower bound.
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    double bound = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(bound), i) << "bucket " << i;
    EXPECT_GT(bound, Histogram::BucketLowerBound(i - 1));
  }
  // Values beyond the top bound land in the last bucket, not out of range.
  EXPECT_EQ(Histogram::BucketIndex(1e12), Histogram::kNumBuckets - 1);
}

TEST(MetricsTest, RuntimeDisableFreezesMutations) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("obs_test/disable_counter");
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("obs_test/disable_histogram");
  counter.Reset();
  histogram.Reset();

  ASSERT_TRUE(MetricsEnabled());  // library default
  SetMetricsEnabled(false);
  counter.Add(7);
  histogram.Record(5.0);
  TDG_OBS_COUNTER_ADD("obs_test/disable_counter", 7);
  EXPECT_EQ(counter.Value(), 0);
  EXPECT_EQ(histogram.Count(), 0);

  SetMetricsEnabled(true);
  counter.Add(7);
  histogram.Record(5.0);
  EXPECT_EQ(counter.Value(), 7);
  EXPECT_EQ(histogram.Count(), 1);
}

TEST(MetricsTest, SnapshotRoundTripsThroughJsonAndCsv) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test/snap_counter").Reset();
  registry.GetCounter("obs_test/snap_counter").Add(11);
  registry.GetGauge("obs_test/snap_gauge").Reset();
  registry.GetGauge("obs_test/snap_gauge").Set(2.5);
  Histogram& histogram = registry.GetHistogram("obs_test/snap_histogram");
  histogram.Reset();
  histogram.Record(10.0);
  histogram.Record(30.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("obs_test/snap_counter"), 11);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("obs_test/snap_gauge").value, 2.5);
  EXPECT_EQ(snapshot.histograms.at("obs_test/snap_histogram").count, 2);
  EXPECT_DOUBLE_EQ(snapshot.histograms.at("obs_test/snap_histogram").mean,
                   20.0);

  // JSON round-trip through the repo's own parser.
  auto parsed = util::JsonValue::Parse(snapshot.ToJson().Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto counters = parsed->GetField("counters");
  ASSERT_TRUE(counters.ok());
  auto counter_value = counters->GetField("obs_test/snap_counter");
  ASSERT_TRUE(counter_value.ok());
  EXPECT_DOUBLE_EQ(counter_value->AsNumber(), 11.0);
  auto histograms = parsed->GetField("histograms");
  ASSERT_TRUE(histograms.ok());
  auto histogram_json = histograms->GetField("obs_test/snap_histogram");
  ASSERT_TRUE(histogram_json.ok());
  EXPECT_DOUBLE_EQ(histogram_json->GetField("p50")->AsNumber(),
                   snapshot.histograms.at("obs_test/snap_histogram").p50);

  // CSV carries one row per metric with the documented header.
  util::CsvDocument csv = snapshot.ToCsv();
  std::string csv_text = csv.ToString();
  EXPECT_NE(csv_text.find("kind,name,value,count,sum,mean,min,max,p50"),
            std::string::npos);
  EXPECT_NE(csv_text.find("obs_test/snap_counter"), std::string::npos);

  // The table renders every metric name.
  std::string table = snapshot.ToTable();
  EXPECT_NE(table.find("obs_test/snap_gauge"), std::string::npos);
  EXPECT_NE(table.find("obs_test/snap_histogram"), std::string::npos);
}

TEST(TraceTest, SpansNestWithDepthAndContainment) {
  StartTracing();
  {
    TDG_TRACE_SPAN("obs_test/outer");
    {
      TDG_TRACE_SPAN("obs_test/inner");
    }
    {
      TDG_TRACE_SPAN("obs_test/inner");
    }
  }
  StopTracing();
  std::vector<TraceEvent> events = CollectTraceEvents();
  ClearTrace();

#if defined(TDG_OBS_DISABLED)
  // The macros compile to nothing in the disabled build.
  EXPECT_TRUE(events.empty());
#else
  ASSERT_EQ(events.size(), 3u);
  // CollectTraceEvents sorts by start time: outer first.
  const TraceEvent& outer = events[0];
  EXPECT_EQ(outer.name, "obs_test/outer");
  EXPECT_EQ(outer.depth, 0);
  for (size_t i = 1; i < events.size(); ++i) {
    const TraceEvent& inner = events[i];
    EXPECT_EQ(inner.name, "obs_test/inner");
    EXPECT_EQ(inner.depth, 1);
    EXPECT_EQ(inner.tid, outer.tid);
    EXPECT_GE(inner.ts_micros, outer.ts_micros);
    EXPECT_LE(inner.ts_micros + inner.dur_micros,
              outer.ts_micros + outer.dur_micros);
  }
#endif
}

TEST(TraceTest, ChromeJsonRoundTripsThroughParser) {
  StartTracing();
  {
    // The TraceSpan class records in both builds (it is a product feature;
    // only the macro compiles out), so this test covers TDG_OBS_DISABLED
    // builds of the exporter too.
    TraceSpan outer("obs_test/json_outer");
    TraceSpan inner("obs_test/json_inner");
  }
  StopTracing();
  auto parsed = util::JsonValue::Parse(TraceToJson().Serialize());
  ClearTrace();
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  auto display_unit = parsed->GetField("displayTimeUnit");
  ASSERT_TRUE(display_unit.ok());
  EXPECT_EQ(display_unit->AsString(), "ms");
  auto trace_events = parsed->GetField("traceEvents");
  ASSERT_TRUE(trace_events.ok());
  ASSERT_TRUE(trace_events->is_array());
  ASSERT_EQ(trace_events->AsArray().size(), 2u);
  for (const util::JsonValue& event : trace_events->AsArray()) {
    EXPECT_EQ(event.GetField("ph")->AsString(), "X");
    EXPECT_EQ(event.GetField("cat")->AsString(), "tdg");
    EXPECT_TRUE(event.GetField("ts")->is_number());
    EXPECT_TRUE(event.GetField("dur")->is_number());
    EXPECT_TRUE(event.GetField("tid")->is_number());
    std::string name = event.GetField("name")->AsString();
    EXPECT_TRUE(name == "obs_test/json_outer" ||
                name == "obs_test/json_inner");
  }
}

TEST(TraceTest, InactiveTracingRecordsNothing) {
  ASSERT_FALSE(TracingActive());
  {
    TraceSpan span("obs_test/ignored");
    TDG_TRACE_SPAN("obs_test/ignored_macro");
  }
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST(TraceTest, RingBufferOverflowCountsDroppedEvents) {
  StartTracing(/*per_thread_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("obs_test/overflow");
  }
  StopTracing();
  std::vector<TraceEvent> events = CollectTraceEvents();
  uint64_t dropped = TraceDroppedEvents();
  ClearTrace();
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(dropped, 6u);
}

TEST(ObsThreadingTest, ConcurrentRecordingIsLossless) {
  constexpr int kIterations = 1000;
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("obs_test/mt_counter");
  Histogram& histogram = registry.GetHistogram("obs_test/mt_histogram");
  counter.Reset();
  histogram.Reset();

  InstallThreadPoolInstrumentation();
  Histogram& task_micros = registry.GetHistogram("thread_pool/task_micros");
  const Histogram::Totals tasks_before = task_micros.GetTotals();

  StartTracing();
  {
    util::ThreadPool pool(4);
    util::ParallelFor(pool, kIterations, [&](int i) {
      TDG_TRACE_SPAN("obs_test/mt_span");
      counter.Add(1);
      histogram.Record(static_cast<double>(i % 100));
    });
  }
  StopTracing();

  EXPECT_EQ(counter.Value(), kIterations);
  EXPECT_EQ(histogram.Count(), kIterations);
  EXPECT_GE(histogram.Max(), 99.0);

  // The thread-pool observer saw the ParallelFor tasks.
  EXPECT_GT(task_micros.GetTotals().count, tasks_before.count);
  EXPECT_GE(registry.GetGauge("thread_pool/queue_depth").Max(), 0.0);

#if !defined(TDG_OBS_DISABLED)
  std::vector<TraceEvent> events = CollectTraceEvents();
  EXPECT_EQ(events.size(), static_cast<size_t>(kIterations));
#endif
  ClearTrace();
}

// Observability must never perturb results: gains from RunSweep are
// bit-identical whether metrics/tracing are on (default) or disabled at
// runtime. The compiled-out (TDG_OBS_DISABLED) build runs this same test,
// extending the guarantee to the compile-out path.
TEST(ObsDeterminismTest, SweepGainsUnchangedByObservability) {
  exp::SweepConfig config;
  config.name = "obs-determinism";
  config.policies = {"DyGroups-Star", "Random-Assignment"};
  config.n_values = {40};
  config.k_values = {4};
  config.alpha_values = {3};
  config.r_values = {0.5};
  config.modes = {InteractionMode::kStar};
  config.distributions = {random::SkillDistribution::kUniform};
  config.runs = 3;
  config.threads = 2;
  config.seed = 20260806;

  StartTracing();
  auto observed = exp::RunSweep(config);
  StopTracing();
  ClearTrace();
  ASSERT_TRUE(observed.ok()) << observed.status();

  SetMetricsEnabled(false);
  auto unobserved = exp::RunSweep(config);
  SetMetricsEnabled(true);
  ASSERT_TRUE(unobserved.ok()) << unobserved.status();

  ASSERT_EQ(observed->cells.size(), unobserved->cells.size());
  for (size_t i = 0; i < observed->cells.size(); ++i) {
    const exp::SweepCell& a = observed->cells[i];
    const exp::SweepCell& b = unobserved->cells[i];
    EXPECT_EQ(a.policy, b.policy);
    // Bitwise, not approximate: observability may not change a single ulp.
    EXPECT_EQ(std::bit_cast<uint64_t>(a.mean_gain),
              std::bit_cast<uint64_t>(b.mean_gain))
        << "cell " << i << ": " << a.mean_gain << " vs " << b.mean_gain;
    EXPECT_EQ(std::bit_cast<uint64_t>(a.stderr_gain),
              std::bit_cast<uint64_t>(b.stderr_gain));
  }

  // With metrics runtime-disabled the per-cell latency histogram is frozen,
  // so mean_micros degrades to 0 rather than lying.
  for (const exp::SweepCell& cell : unobserved->cells) {
    EXPECT_EQ(cell.mean_micros, 0.0);
  }
}

}  // namespace
}  // namespace tdg::obs
