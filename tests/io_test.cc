#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/population_io.h"
#include "io/series_io.h"

namespace tdg::io {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(PopulationIoTest, RoundTripsSkills) {
  std::string path = TempPath("skills_roundtrip.csv");
  SkillVector skills = {0.1, 0.9, 2.5, 1e-6};
  ASSERT_TRUE(WriteSkills(path, skills).ok());
  auto loaded = ReadSkills(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), skills.size());
  for (size_t i = 0; i < skills.size(); ++i) {
    EXPECT_DOUBLE_EQ((*loaded)[i], skills[i]);
  }
  std::remove(path.c_str());
}

TEST(PopulationIoTest, ReadReordersById) {
  std::string path = TempPath("skills_shuffled.csv");
  {
    std::ofstream out(path);
    out << "participant,skill\n2,0.3\n0,0.1\n1,0.2\n";
  }
  auto loaded = ReadSkills(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, (SkillVector{0.1, 0.2, 0.3}));
  std::remove(path.c_str());
}

TEST(PopulationIoTest, RejectsBadFiles) {
  std::string path = TempPath("skills_bad.csv");
  {
    std::ofstream out(path);
    out << "participant,skill\n0,0.5\n0,0.7\n";  // duplicate id
  }
  EXPECT_FALSE(ReadSkills(path).ok());
  {
    std::ofstream out(path);
    out << "participant,skill\n0,0.5\n5,0.7\n";  // id out of range
  }
  EXPECT_FALSE(ReadSkills(path).ok());
  {
    std::ofstream out(path);
    out << "participant,skill\n0,-0.5\n1,0.7\n";  // negative skill
  }
  EXPECT_FALSE(ReadSkills(path).ok());
  {
    std::ofstream out(path);
    out << "id,value\n0,0.5\n";  // wrong header
  }
  EXPECT_FALSE(ReadSkills(path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(ReadSkills("/nonexistent/skills.csv").ok());
}

TEST(PopulationIoTest, WriteRejectsInvalidSkills) {
  EXPECT_FALSE(WriteSkills(TempPath("never.csv"), {}).ok());
  EXPECT_FALSE(WriteSkills(TempPath("never.csv"), {1.0, -1.0}).ok());
}

TEST(SeriesIoTest, TableAndCsvAgree) {
  ExperimentSeries series;
  series.x_label = "n";
  series.series_names = {"DyGroups-Star", "Random"};
  series.x_values = {10, 100};
  series.values = {{1.5, 12.25}, {1.0, 9.5}};

  std::string table = series.ToTable();
  EXPECT_NE(table.find("DyGroups-Star"), std::string::npos);
  EXPECT_NE(table.find("12.25"), std::string::npos);

  std::string path = TempPath("series.csv");
  ASSERT_TRUE(series.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "n,DyGroups-Star,Random");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "10,1.5,1");
  std::remove(path.c_str());
}

TEST(SeriesIoTest, RejectsShapeMismatch) {
  ExperimentSeries series;
  series.x_label = "k";
  series.series_names = {"a"};
  series.x_values = {1, 2};
  series.values = {{1.0}};  // too short
  EXPECT_FALSE(series.WriteCsv(TempPath("bad_series.csv")).ok());
  series.values = {{1.0, 2.0}, {3.0, 4.0}};  // too many columns
  EXPECT_FALSE(series.WriteCsv(TempPath("bad_series.csv")).ok());
}

}  // namespace
}  // namespace tdg::io
