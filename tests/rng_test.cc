#include "random/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "random/distributions.h"

namespace tdg::random {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBounded(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(RngTest, NextDoubleRoughlyUniform) {
  Rng rng(99);
  int below_half = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.NextDouble() < 0.5) ++below_half;
  }
  EXPECT_NEAR(static_cast<double>(below_half) / kSamples, 0.5, 0.01);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 a(0);
  SplitMix64 b(0);
  EXPECT_EQ(a(), b());
  // Distinct consecutive outputs.
  SplitMix64 c(0);
  uint64_t first = c();
  uint64_t second = c();
  EXPECT_NE(first, second);
}

TEST(UniformRealTest, StaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = UniformReal(rng, -2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(StandardNormalTest, MomentsMatch) {
  Rng rng(31);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    double v = StandardNormal(rng);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kSamples;
  double variance = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(LogNormalTest, AlwaysPositiveAndMedianMatches) {
  Rng rng(17);
  constexpr int kSamples = 50000;
  int below_median = 0;
  for (int i = 0; i < kSamples; ++i) {
    double v = LogNormal(rng, 1.0, 0.5);
    EXPECT_GT(v, 0.0);
    if (v < std::exp(1.0)) ++below_median;  // median of log-normal = e^mu
  }
  EXPECT_NEAR(static_cast<double>(below_median) / kSamples, 0.5, 0.02);
}

TEST(BoundedZipfTest, SupportAndMonotoneMass) {
  Rng rng(23);
  BoundedZipf zipf(kZipfExponent, kZipfNumValues);
  std::vector<int> counts(kZipfNumValues + 1, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    int v = zipf.Sample(rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, kZipfNumValues);
    ++counts[v];
  }
  // Mass must be decreasing in v, and the head dominates: P(1) =
  // 1 / sum_{v=1..10} v^{-2.3} ≈ 0.716.
  for (int v = 1; v < kZipfNumValues; ++v) {
    EXPECT_GE(counts[v], counts[v + 1]) << "v=" << v;
  }
  EXPECT_NEAR(static_cast<double>(counts[1]) / kSamples, 0.716, 0.02);
}

TEST(BoundedZipfTest, DegenerateSingleValue) {
  Rng rng(1);
  BoundedZipf zipf(2.0, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 1);
  }
}

TEST(GenerateSkillsTest, AllDistributionsProducePositiveSkills) {
  Rng rng(3);
  for (SkillDistribution d :
       {SkillDistribution::kLogNormal, SkillDistribution::kZipf,
        SkillDistribution::kUniform}) {
    std::vector<double> skills = GenerateSkills(rng, d, 1000);
    ASSERT_EQ(skills.size(), 1000u);
    for (double s : skills) {
      EXPECT_GE(s, 0.0) << SkillDistributionName(d);
    }
  }
}

TEST(GenerateSkillsTest, ZipfSkillsAreIntegersInRange) {
  Rng rng(4);
  std::vector<double> skills =
      GenerateSkills(rng, SkillDistribution::kZipf, 500);
  for (double s : skills) {
    EXPECT_EQ(s, std::floor(s));
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 10.0);
  }
}

TEST(SkillDistributionTest, ParseRoundTrip) {
  for (SkillDistribution d :
       {SkillDistribution::kLogNormal, SkillDistribution::kZipf,
        SkillDistribution::kUniform}) {
    auto parsed = ParseSkillDistribution(SkillDistributionName(d));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), d);
  }
  EXPECT_FALSE(ParseSkillDistribution("pareto").ok());
  EXPECT_TRUE(ParseSkillDistribution("lognormal").ok());
}

}  // namespace
}  // namespace tdg::random
