#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/stopwatch.h"

namespace tdg::util {
namespace {

TEST(LoggingTest, SeverityThresholdRoundTrips) {
  LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, InfoBelowThresholdIsSuppressed) {
  LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  testing::internal::CaptureStderr();
  TDG_LOG(Info) << "should not appear";
  TDG_LOG(Error) << "should appear";
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("should not appear"), std::string::npos);
  EXPECT_NE(output.find("should appear"), std::string::npos);
  EXPECT_NE(output.find("ERROR"), std::string::npos);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, LogLineCarriesBasenameAndLine) {
  LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kInfo);
  testing::internal::CaptureStderr();
  TDG_LOG(Warning) << "marker";
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
  EXPECT_EQ(output.find('/'), std::string::npos);  // basename only
  SetMinLogSeverity(original);
}

TEST(CheckTest, PassingCheckIsSilent) {
  testing::internal::CaptureStderr();
  TDG_CHECK(1 + 1 == 2) << "never evaluated";
  TDG_CHECK_EQ(4, 4);
  TDG_CHECK_LT(1, 2);
  TDG_CHECK_GE(2, 2);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ TDG_CHECK(false) << "boom"; }, "Check failed");
  EXPECT_DEATH({ TDG_CHECK_EQ(1, 2); }, "Check failed");
}

TEST(CheckDeathTest, FailureMessageNamesConditionAndStreamedContext) {
  // The death message must carry both the stringified condition and the
  // caller's streamed context — that pairing is what makes a production
  // CHECK trail actionable.
  EXPECT_DEATH({ TDG_CHECK(2 + 2 == 5) << "arithmetic drifted"; },
               "Check failed: 2 \\+ 2 == 5 arithmetic drifted");
}

TEST(CheckDeathTest, EveryComparisonMacroAborts) {
  EXPECT_DEATH({ TDG_CHECK_NE(3, 3); }, "Check failed");
  EXPECT_DEATH({ TDG_CHECK_LT(2, 1); }, "Check failed");
  EXPECT_DEATH({ TDG_CHECK_LE(2, 1); }, "Check failed");
  EXPECT_DEATH({ TDG_CHECK_GT(1, 2); }, "Check failed");
  EXPECT_DEATH({ TDG_CHECK_GE(1, 2); }, "Check failed");
}

TEST(LoggingDeathTest, FatalLogFlushesMessageThenAborts) {
  // kFatal must emit the whole prefixed line before aborting — a fatal
  // message that dies unflushed is worthless in a crash triage.
  EXPECT_DEATH({ TDG_LOG(Fatal) << "fatal marker 0xf00d"; },
               "\\[FATAL .*logging_test.cc.*fatal marker 0xf00d");
}

TEST(LoggingDeathTest, FatalIsEmittedEvenAboveSeverityThreshold) {
  // SetMinLogSeverity must never be able to swallow a fatal message: the
  // process is about to die and the reason has to reach stderr.
  EXPECT_DEATH(
      {
        SetMinLogSeverity(LogSeverity::kFatal);
        TDG_LOG(Fatal) << "still visible";
      },
      "still visible");
}

TEST(LoggingTest, PrefixCarriesMonotonicTimestampAndThreadId) {
  LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kInfo);
  testing::internal::CaptureStderr();
  TDG_LOG(Info) << "stamped";
  std::string output = testing::internal::GetCapturedStderr();
  // "[INFO <seconds>.<micros> t<id> logging_test.cc:<line>] stamped".
  EXPECT_NE(output.find("[INFO "), std::string::npos);
  EXPECT_NE(output.find(" t"), std::string::npos);
  EXPECT_NE(output.find('.'), std::string::npos);  // fractional seconds
  std::string expected_tid = "t" + std::to_string(CurrentThreadId());
  EXPECT_NE(output.find(expected_tid), std::string::npos);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, CurrentThreadIdIsStablePerThread) {
  int first = CurrentThreadId();
  EXPECT_GE(first, 0);
  EXPECT_EQ(CurrentThreadId(), first);
}

TEST(StopwatchTest, MeasuresElapsedTimeMonotonically) {
  Stopwatch stopwatch;
  int64_t first = stopwatch.ElapsedMicros();
  // Burn a little time.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  int64_t second = stopwatch.ElapsedMicros();
  EXPECT_GE(first, 0);
  EXPECT_GE(second, first);
  EXPECT_NEAR(stopwatch.ElapsedMillis(), second / 1e3, 1.0);
  EXPECT_NEAR(stopwatch.ElapsedSeconds(), second / 1e6, 1e-3);

  stopwatch.Restart();
  EXPECT_LE(stopwatch.ElapsedMicros(), second);
}

// Burns CPU long enough for a steady_clock tick to register.
int64_t BurnMicros() {
  Stopwatch burn;
  volatile double sink = 0;
  while (burn.TotalMicros() < 200) sink = sink + 1;
  return burn.TotalMicros();
}

TEST(StopwatchTest, PauseFreezesTotalAndResumeContinues) {
  Stopwatch stopwatch;
  BurnMicros();
  stopwatch.Pause();
  EXPECT_FALSE(stopwatch.running());
  int64_t frozen = stopwatch.TotalMicros();
  EXPECT_GT(frozen, 0);
  BurnMicros();
  EXPECT_EQ(stopwatch.TotalMicros(), frozen);  // paused time excluded
  stopwatch.Pause();                           // idempotent
  EXPECT_EQ(stopwatch.TotalMicros(), frozen);

  stopwatch.Resume();
  EXPECT_TRUE(stopwatch.running());
  stopwatch.Resume();  // idempotent
  BurnMicros();
  EXPECT_GT(stopwatch.TotalMicros(), frozen);
}

TEST(StopwatchTest, RestartClearsAccumulatedAndPausedState) {
  Stopwatch stopwatch;
  BurnMicros();
  stopwatch.Pause();
  stopwatch.Restart();
  EXPECT_TRUE(stopwatch.running());
  EXPECT_LT(stopwatch.TotalMicros(), 200);
}

TEST(StopwatchTest, LapsPartitionTheTotal) {
  Stopwatch stopwatch;
  BurnMicros();
  int64_t lap1 = stopwatch.Lap();
  EXPECT_GT(lap1, 0);
  BurnMicros();
  int64_t lap2 = stopwatch.Lap();
  EXPECT_GT(lap2, 0);
  // Laps cover everything up to the last lap mark; the running remainder
  // keeps the total at or above their sum.
  EXPECT_GE(stopwatch.TotalMicros(), lap1 + lap2);
}

TEST(StopwatchTest, MonotonicMicrosAdvances) {
  int64_t first = MonotonicMicros();
  EXPECT_GE(first, 0);
  BurnMicros();
  EXPECT_GT(MonotonicMicros(), first);
}

}  // namespace
}  // namespace tdg::util
