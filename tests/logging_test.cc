#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/stopwatch.h"

namespace tdg::util {
namespace {

TEST(LoggingTest, SeverityThresholdRoundTrips) {
  LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, InfoBelowThresholdIsSuppressed) {
  LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  testing::internal::CaptureStderr();
  TDG_LOG(Info) << "should not appear";
  TDG_LOG(Error) << "should appear";
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("should not appear"), std::string::npos);
  EXPECT_NE(output.find("should appear"), std::string::npos);
  EXPECT_NE(output.find("ERROR"), std::string::npos);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, LogLineCarriesBasenameAndLine) {
  LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kInfo);
  testing::internal::CaptureStderr();
  TDG_LOG(Warning) << "marker";
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
  EXPECT_EQ(output.find('/'), std::string::npos);  // basename only
  SetMinLogSeverity(original);
}

TEST(CheckTest, PassingCheckIsSilent) {
  testing::internal::CaptureStderr();
  TDG_CHECK(1 + 1 == 2) << "never evaluated";
  TDG_CHECK_EQ(4, 4);
  TDG_CHECK_LT(1, 2);
  TDG_CHECK_GE(2, 2);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ TDG_CHECK(false) << "boom"; }, "Check failed");
  EXPECT_DEATH({ TDG_CHECK_EQ(1, 2); }, "Check failed");
}

TEST(StopwatchTest, MeasuresElapsedTimeMonotonically) {
  Stopwatch stopwatch;
  int64_t first = stopwatch.ElapsedMicros();
  // Burn a little time.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  int64_t second = stopwatch.ElapsedMicros();
  EXPECT_GE(first, 0);
  EXPECT_GE(second, first);
  EXPECT_NEAR(stopwatch.ElapsedMillis(), second / 1e3, 1.0);
  EXPECT_NEAR(stopwatch.ElapsedSeconds(), second / 1e6, 1e-3);

  stopwatch.Restart();
  EXPECT_LE(stopwatch.ElapsedMicros(), second);
}

}  // namespace
}  // namespace tdg::util
