#include "obs/perf_counters.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/bench_report.h"
#include "obs/metrics.h"
#include "obs/perf_profile.h"

namespace tdg::obs {
namespace {

// Burns thread CPU time until the task clock advanced by at least
// `min_delta_ns`, so attribution tests always have something to attribute.
void SpinTaskClock(int64_t min_delta_ns) {
  ThreadPerfCounters& counters = ThreadPerfCounters::ForCurrentThread();
  const PerfSample start = counters.Read();
  volatile double sink = 0.0;
  for (;;) {
    for (int i = 0; i < 5000; ++i) sink += static_cast<double>(i) * 1e-9;
    const PerfSample now = counters.Read();
    if (now.DeltaSince(start)[PerfEvent::kTaskClockNs] >= min_delta_ns) {
      return;
    }
  }
}

// Restores the profiling toggle on scope exit — these tests flip process
// state that other tests rely on being off.
class ScopedProfilingEnabled {
 public:
  explicit ScopedProfilingEnabled(bool enabled)
      : previous_(ProfilingEnabled()) {
    SetProfilingEnabled(enabled);
  }
  ~ScopedProfilingEnabled() { SetProfilingEnabled(previous_); }

 private:
  bool previous_;
};

TEST(PerfCountersTest, EventAndBackendNamesAreStable) {
  EXPECT_EQ(PerfBackendName(PerfBackend::kPerfEvent), "perf_event");
  EXPECT_EQ(PerfBackendName(PerfBackend::kRusage), "rusage");
  EXPECT_EQ(PerfEventName(PerfEvent::kCycles), "cycles");
  EXPECT_EQ(PerfEventName(PerfEvent::kInstructions), "instructions");
  EXPECT_EQ(PerfEventName(PerfEvent::kCacheReferences), "cache_references");
  EXPECT_EQ(PerfEventName(PerfEvent::kCacheMisses), "cache_misses");
  EXPECT_EQ(PerfEventName(PerfEvent::kBranchMisses), "branch_misses");
  EXPECT_EQ(PerfEventName(PerfEvent::kTaskClockNs), "task_clock_ns");
  EXPECT_EQ(PerfEventName(PerfEvent::kPageFaults), "page_faults");
}

TEST(PerfCountersTest, ProbeNeverFailsAndSuppliesPortableEvents) {
  ThreadPerfCounters& counters = ThreadPerfCounters::ForCurrentThread();
  // Whatever backend the host grants, reading must work and the portable
  // events must be live: both backends can supply task clock + page faults.
  const PerfSample sample = counters.Read();
  EXPECT_TRUE(sample.available(PerfEvent::kTaskClockNs));
  EXPECT_TRUE(sample.available(PerfEvent::kPageFaults));
  if (counters.backend() == PerfBackend::kPerfEvent) {
    // The hardware backend only stays active when the core events opened.
    EXPECT_TRUE(sample.available(PerfEvent::kCycles));
    EXPECT_TRUE(sample.available(PerfEvent::kInstructions));
  } else {
    EXPECT_FALSE(sample.available(PerfEvent::kCycles));
    EXPECT_FALSE(sample.available(PerfEvent::kInstructions));
  }
}

TEST(PerfCountersTest, ReadingsAreMonotoneUnderWork) {
  ThreadPerfCounters& counters = ThreadPerfCounters::ForCurrentThread();
  const PerfSample before = counters.Read();
  SpinTaskClock(2'000'000);  // 2ms of thread CPU
  const PerfSample delta = counters.Read().DeltaSince(before);
  EXPECT_GE(delta[PerfEvent::kTaskClockNs], 2'000'000);
  if (counters.backend() == PerfBackend::kPerfEvent) {
    EXPECT_GT(delta[PerfEvent::kCycles], 0);
    EXPECT_GT(delta[PerfEvent::kInstructions], 0);
  }
}

TEST(PerfCountersTest, DeltaSincePropagatesUnavailabilityAndClamps) {
  PerfSample before;
  PerfSample after;
  before.values[static_cast<int>(PerfEvent::kCycles)] = 100;
  after.values[static_cast<int>(PerfEvent::kCycles)] = 250;
  // Instructions unavailable on one side each way.
  before.values[static_cast<int>(PerfEvent::kInstructions)] = 7;
  after.values[static_cast<int>(PerfEvent::kTaskClockNs)] = 9;
  // Page faults go backwards (counter re-open); must clamp, not underflow.
  before.values[static_cast<int>(PerfEvent::kPageFaults)] = 50;
  after.values[static_cast<int>(PerfEvent::kPageFaults)] = 20;

  const PerfSample delta = after.DeltaSince(before);
  EXPECT_EQ(delta[PerfEvent::kCycles], 150);
  EXPECT_FALSE(delta.available(PerfEvent::kInstructions));
  EXPECT_FALSE(delta.available(PerfEvent::kTaskClockNs));
  EXPECT_FALSE(delta.available(PerfEvent::kBranchMisses));
  EXPECT_EQ(delta[PerfEvent::kPageFaults], 0);
}

TEST(PerfCountersTest, ForceRusageBackendDegradesFreshThreads) {
  ForceRusageBackend(true);
  PerfBackend forced_backend = PerfBackend::kPerfEvent;
  PerfSample forced_sample;
  // The calling thread's counter set may predate the force — probe from a
  // fresh thread, which must take the degraded path.
  std::thread probe([&] {
    ThreadPerfCounters& counters = ThreadPerfCounters::ForCurrentThread();
    forced_backend = counters.backend();
    forced_sample = counters.Read();
  });
  probe.join();
  ForceRusageBackend(false);

  EXPECT_EQ(forced_backend, PerfBackend::kRusage);
  EXPECT_TRUE(forced_sample.available(PerfEvent::kTaskClockNs));
  EXPECT_TRUE(forced_sample.available(PerfEvent::kPageFaults));
  EXPECT_FALSE(forced_sample.available(PerfEvent::kCycles));
}

TEST(PerfProfileTest, ScopesAreNoOpsWhileProfilingDisabled) {
  ASSERT_FALSE(ProfilingEnabled());
  PerfDomain& domain = PerfDomain::Get("test/profile_off");
  Counter& calls =
      MetricsRegistry::Global().GetCounter("perf/test/profile_off/calls");
  const int64_t calls_before = calls.Value();
  {
    ScopedPerfDomain scope(domain);
    SpinTaskClock(200'000);
  }
  EXPECT_EQ(calls.Value(), calls_before);
}

TEST(PerfProfileTest, AttributesSelfTimeToNestedDomains) {
  ScopedProfilingEnabled profiling(true);
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& outer_clock =
      registry.GetCounter("perf/test/nest_outer/task_clock_ns");
  Counter& inner_clock =
      registry.GetCounter("perf/test/nest_inner/task_clock_ns");
  Counter& outer_calls = registry.GetCounter("perf/test/nest_outer/calls");
  Counter& inner_calls = registry.GetCounter("perf/test/nest_inner/calls");
  const int64_t outer_clock_before = outer_clock.Value();
  const int64_t inner_clock_before = inner_clock.Value();
  const int64_t outer_calls_before = outer_calls.Value();
  const int64_t inner_calls_before = inner_calls.Value();

  ThreadPerfCounters& counters = ThreadPerfCounters::ForCurrentThread();
  const PerfSample window_start = counters.Read();
  {
    ScopedPerfDomain outer(PerfDomain::Get("test/nest_outer"));
    SpinTaskClock(1'000'000);
    {
      ScopedPerfDomain inner(PerfDomain::Get("test/nest_inner"));
      SpinTaskClock(1'000'000);
    }
    SpinTaskClock(1'000'000);
  }
  const int64_t window_ns =
      counters.Read().DeltaSince(window_start)[PerfEvent::kTaskClockNs];

  const int64_t outer_ns = outer_clock.Value() - outer_clock_before;
  const int64_t inner_ns = inner_clock.Value() - inner_clock_before;
  EXPECT_EQ(outer_calls.Value() - outer_calls_before, 1);
  EXPECT_EQ(inner_calls.Value() - inner_calls_before, 1);
  // Both domains did ~1ms+ of work...
  EXPECT_GE(outer_ns, 1'000'000);
  EXPECT_GE(inner_ns, 1'000'000);
  // ...and self-time accounting means their sum can never exceed the
  // enclosing thread window (the invariant tdg_profile --check gates on).
  EXPECT_LE(outer_ns + inner_ns, window_ns);
}

TEST(PerfProfileTest, ScopedBenchRepRecordsPerRepCounterSeries) {
  ScopedProfilingEnabled profiling(true);
  BenchReporter reporter("perf_counters_test");
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    ScopedBenchRep scoped(reporter, "profile/case");
    SpinTaskClock(300'000);
    scoped.set_objective(1.0);
  }

  const BenchReport report = reporter.Build();
  EXPECT_EQ(
      report.perf_backend,
      PerfBackendName(ThreadPerfCounters::ForCurrentThread().backend()));
  ASSERT_EQ(report.cases.size(), 1u);
  const BenchCase& bench_case = report.cases[0];
  ASSERT_EQ(bench_case.wall_micros.size(), static_cast<size_t>(kReps));
  ASSERT_FALSE(bench_case.counter_series.empty());
  const auto clock_series =
      bench_case.counter_series.find("perf/total/task_clock_ns");
  ASSERT_NE(clock_series, bench_case.counter_series.end());
  for (const auto& [series, samples] : bench_case.counter_series) {
    EXPECT_EQ(samples.size(), static_cast<size_t>(kReps)) << series;
  }
  for (double sample : clock_series->second) {
    EXPECT_GE(sample, 300'000.0);
  }
  EXPECT_TRUE(report.Validate().ok());
}

}  // namespace
}  // namespace tdg::obs
