#include "core/brute_force.h"

#include <gtest/gtest.h>

#include <set>

#include "core/dygroups.h"
#include "core/process.h"
#include "random/distributions.h"

namespace tdg {
namespace {

TEST(EnumerateGroupingsTest, KnownCounts) {
  // n! / ((t!)^k k!)
  struct Case {
    int n;
    int k;
    size_t expected;
  };
  for (const Case& c : {Case{4, 2, 3}, Case{6, 2, 10}, Case{6, 3, 15},
                        Case{8, 2, 35}, Case{9, 3, 280}, Case{4, 4, 1},
                        Case{4, 1, 1}}) {
    auto groupings = EnumerateEquiSizedGroupings(c.n, c.k);
    ASSERT_TRUE(groupings.ok()) << c.n << "/" << c.k;
    EXPECT_EQ(groupings->size(), c.expected) << c.n << "/" << c.k;
    auto count = CountEquiSizedGroupings(c.n, c.k);
    ASSERT_TRUE(count.ok());
    EXPECT_NEAR(count.value(), static_cast<double>(c.expected), 1e-6);
  }
}

TEST(EnumerateGroupingsTest, AllValidAndDistinct) {
  auto groupings = EnumerateEquiSizedGroupings(8, 2);
  ASSERT_TRUE(groupings.ok());
  std::set<std::string> keys;
  for (const Grouping& g : groupings.value()) {
    EXPECT_TRUE(g.ValidateEquiSized(8).ok());
    keys.insert(g.CanonicalKey());
  }
  EXPECT_EQ(keys.size(), groupings->size());
}

TEST(EnumerateGroupingsTest, RejectsIndivisibleAndHuge) {
  EXPECT_FALSE(EnumerateEquiSizedGroupings(7, 2).ok());
  EXPECT_FALSE(EnumerateEquiSizedGroupings(0, 1).ok());
  EXPECT_FALSE(EnumerateEquiSizedGroupings(40, 20).ok());  // too many
}

TEST(BruteForceTest, ZeroRoundsGivesZeroGain) {
  SkillVector skills = {0.1, 0.5, 0.7, 0.9};
  LinearGain gain(0.5);
  auto result = SolveTdgBruteForce(skills, 2, 0, InteractionMode::kStar,
                                   gain);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->best_total_gain, 0.0);
  EXPECT_TRUE(result->best_sequence.empty());
}

TEST(BruteForceTest, SingleRoundMatchesBestEnumeratedGrouping) {
  random::Rng rng(3);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kUniform, 6);
  for (double& s : skills) s += 0.01;
  LinearGain gain(0.4);
  for (InteractionMode mode :
       {InteractionMode::kStar, InteractionMode::kClique}) {
    auto solver = SolveTdgBruteForce(skills, 2, 1, mode, gain);
    ASSERT_TRUE(solver.ok());
    auto groupings = EnumerateEquiSizedGroupings(6, 2);
    ASSERT_TRUE(groupings.ok());
    double best = 0.0;
    for (const Grouping& g : groupings.value()) {
      best = std::max(best,
                      EvaluateRoundGain(mode, g, gain, skills).value());
    }
    EXPECT_NEAR(solver->best_total_gain, best, 1e-12);
  }
}

TEST(BruteForceTest, RespectsBudget) {
  SkillVector skills(12, 1.0);
  for (size_t i = 0; i < skills.size(); ++i) skills[i] += i;
  LinearGain gain(0.5);
  BruteForceOptions options;
  options.max_sequences = 10;  // (12 choose 6)/2 = 462 > 10
  EXPECT_FALSE(SolveTdgBruteForce(skills, 2, 1, InteractionMode::kStar, gain,
                                  options)
                   .ok());
}

TEST(BruteForceTest, ExploredSequenceCountIsExact) {
  SkillVector skills = {0.2, 0.4, 0.6, 0.8};
  LinearGain gain(0.5);
  auto result =
      SolveTdgBruteForce(skills, 2, 3, InteractionMode::kStar, gain);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->sequences_explored, 27.0);  // 3^3
  EXPECT_EQ(result->best_sequence.size(), 3u);
}

// Theorem 5 (spot check; the full 1000-instance sweep is the §V-B3 bench):
// DyGroups-Star attains the brute-force optimum for k = 2.
TEST(BruteForceTest, DyGroupsStarOptimalForTwoGroups) {
  random::Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 4 + 2 * static_cast<int>(rng.NextBounded(2));  // 4 or 6
    int alpha = 1 + static_cast<int>(rng.NextBounded(3));  // 1..3
    double r = 0.1 + 0.8 * rng.NextDouble();
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kUniform, n);
    for (double& s : skills) s += 0.01;

    LinearGain gain(r);
    auto brute = SolveTdgBruteForce(skills, 2, alpha, InteractionMode::kStar,
                                    gain);
    ASSERT_TRUE(brute.ok());

    DyGroupsStarPolicy policy;
    ProcessConfig config;
    config.num_groups = 2;
    config.num_rounds = alpha;
    config.mode = InteractionMode::kStar;
    auto dygroups = RunProcess(skills, config, gain, policy);
    ASSERT_TRUE(dygroups.ok());

    EXPECT_NEAR(dygroups->total_gain, brute->best_total_gain, 1e-9)
        << "n=" << n << " alpha=" << alpha << " r=" << r;
  }
}

// The paper conjectures (§VII) DyGroups-Star stays optimal for k > 2;
// verify on tiny instances that it at least matches brute force there too.
TEST(BruteForceTest, DyGroupsStarMatchesBruteForceOnTinyKThree) {
  random::Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kUniform, 6);
    for (double& s : skills) s += 0.01;
    LinearGain gain(0.5);
    auto brute = SolveTdgBruteForce(skills, 3, 2, InteractionMode::kStar,
                                    gain);
    ASSERT_TRUE(brute.ok());

    DyGroupsStarPolicy policy;
    ProcessConfig config;
    config.num_groups = 3;
    config.num_rounds = 2;
    config.mode = InteractionMode::kStar;
    auto dygroups = RunProcess(skills, config, gain, policy);
    ASSERT_TRUE(dygroups.ok());
    EXPECT_LE(dygroups->total_gain, brute->best_total_gain + 1e-9);
    EXPECT_NEAR(dygroups->total_gain, brute->best_total_gain, 1e-9);
  }
}

}  // namespace
}  // namespace tdg
