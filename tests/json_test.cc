#include "util/json.h"

#include <gtest/gtest.h>

namespace tdg::util {
namespace {

TEST(JsonValueTest, TypePredicatesAndAccessors) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(1.5).is_number());
  EXPECT_TRUE(JsonValue("hi").is_string());
  EXPECT_TRUE(JsonValue::MakeArray().is_array());
  EXPECT_TRUE(JsonValue::MakeObject().is_object());

  EXPECT_EQ(JsonValue(true).AsBool(), true);
  EXPECT_DOUBLE_EQ(JsonValue(2.5).AsNumber(), 2.5);
  EXPECT_EQ(JsonValue("x").AsString(), "x");
}

TEST(JsonValueTest, BuildAndSerializeCompact) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("name", "tdg");
  root.Set("n", 10000);
  root.Set("ok", true);
  root.Set("ratio", 1.5);
  JsonValue list = JsonValue::MakeArray();
  list.Append(1);
  list.Append(2);
  root.Set("values", std::move(list));
  root.Set("nothing", JsonValue::Null());
  EXPECT_EQ(root.Serialize(),
            "{\"n\":10000,\"name\":\"tdg\",\"nothing\":null,\"ok\":true,"
            "\"ratio\":1.5,\"values\":[1,2]}");
}

TEST(JsonValueTest, PrettySerializationIndents) {
  JsonValue root = JsonValue::MakeObject();
  root.Set("a", 1);
  std::string pretty = root.SerializePretty();
  EXPECT_EQ(pretty, "{\n  \"a\": 1\n}");
}

TEST(JsonValueTest, EscapingRoundTrips) {
  JsonValue value(std::string("line\nquote\"back\\slash\ttab"));
  auto parsed = JsonValue::Parse(value.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), value.AsString());
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_EQ(JsonValue::Parse("true")->AsBool(), true);
  EXPECT_EQ(JsonValue::Parse("false")->AsBool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-2.5e3")->AsNumber(), -2500.0);
  EXPECT_EQ(JsonValue::Parse("\"abc\"")->AsString(), "abc");
}

TEST(JsonParseTest, ParsesNestedStructures) {
  auto parsed = JsonValue::Parse(
      R"({"cells": [{"n": 10, "gain": 1.5}, {"n": 20, "gain": 3.25}],
          "name": "sweep"})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetField("name")->AsString(), "sweep");
  // Copy out of the temporary StatusOr — binding a reference to
  // `GetField(...)->AsArray()` would dangle once the temporary dies.
  const auto cells = parsed->GetField("cells")->AsArray();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_DOUBLE_EQ(cells[1].GetField("gain")->AsNumber(), 3.25);
  EXPECT_FALSE(parsed->GetField("missing").ok());
}

TEST(JsonParseTest, UnicodeEscapes) {
  auto parsed = JsonValue::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "A\xc3\xa9");  // "Aé" in UTF-8
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("{'a': 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());       // trailing junk
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("\"bad\\escape\"").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\\ud800\"").ok());  // surrogate
}

TEST(JsonParseTest, RoundTripsComplexDocument) {
  JsonValue root = JsonValue::MakeObject();
  JsonValue cells = JsonValue::MakeArray();
  for (int i = 0; i < 3; ++i) {
    JsonValue cell = JsonValue::MakeObject();
    cell.Set("index", i);
    cell.Set("gain", 1.0 / (i + 1));
    cells.Append(std::move(cell));
  }
  root.Set("cells", std::move(cells));
  root.Set("meta", JsonValue::MakeObject());

  auto reparsed = JsonValue::Parse(root.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value(), root);
  auto reparsed_pretty = JsonValue::Parse(root.SerializePretty());
  ASSERT_TRUE(reparsed_pretty.ok());
  EXPECT_EQ(reparsed_pretty.value(), root);
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto parsed = JsonValue::Parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetField("a")->AsArray().size(), 2u);
}

}  // namespace
}  // namespace tdg::util
