#include "core/affinity.h"

#include <gtest/gtest.h>

#include "core/dygroups.h"
#include "random/distributions.h"

namespace tdg {
namespace {

TEST(AffinityMatrixTest, SymmetricWithZeroDiagonal) {
  AffinityMatrix affinity(4);
  affinity.set(0, 2, 0.7);
  EXPECT_DOUBLE_EQ(affinity.at(0, 2), 0.7);
  EXPECT_DOUBLE_EQ(affinity.at(2, 0), 0.7);
  EXPECT_DOUBLE_EQ(affinity.at(1, 1), 0.0);
  affinity.set(1, 1, 0.9);  // ignored
  EXPECT_DOUBLE_EQ(affinity.at(1, 1), 0.0);
  affinity.set(0, 1, 1.7);  // clamped
  EXPECT_DOUBLE_EQ(affinity.at(0, 1), 1.0);
}

TEST(AffinityMatrixTest, RandomMatrixStatistics) {
  random::Rng rng(1);
  AffinityMatrix affinity = AffinityMatrix::Random(200, rng);
  EXPECT_NEAR(affinity.MeanAffinity(), 0.5, 0.02);
  for (int i = 0; i < 200; i += 37) {
    EXPECT_DOUBLE_EQ(affinity.at(i, i), 0.0);
  }
}

TEST(GroupingAffinityTest, SumsWithinGroupPairs) {
  AffinityMatrix affinity(4);
  affinity.set(0, 1, 0.5);
  affinity.set(2, 3, 0.25);
  affinity.set(0, 2, 0.9);  // cross-group, must not count
  Grouping grouping({{0, 1}, {2, 3}});
  EXPECT_DOUBLE_EQ(GroupingAffinity(grouping, affinity), 0.75);
}

TEST(EvolveAffinityTest, StrengthensMatesDecaysStrangers) {
  AffinityMatrix affinity(4);
  affinity.set(0, 1, 0.5);
  affinity.set(0, 2, 0.5);
  Grouping grouping({{0, 1}, {2, 3}});
  EvolveAffinity(grouping, /*strengthen=*/0.2, /*decay=*/0.1, affinity);
  EXPECT_DOUBLE_EQ(affinity.at(0, 1), 0.5 + 0.2 * 0.5);  // mates
  EXPECT_DOUBLE_EQ(affinity.at(0, 2), 0.45);             // strangers
  // Repeated evolution stays within [0, 1].
  for (int i = 0; i < 100; ++i) {
    EvolveAffinity(grouping, 0.3, 0.2, affinity);
  }
  EXPECT_LE(affinity.at(0, 1), 1.0);
  EXPECT_GE(affinity.at(0, 2), 0.0);
}

class AffinityPolicyTest : public testing::Test {
 protected:
  void SetUp() override {
    random::Rng rng(11);
    skills_ = random::GenerateSkills(
        rng, random::SkillDistribution::kLogNormal, 20);
    affinity_rng_ = std::make_unique<random::Rng>(13);
  }

  SkillVector skills_;
  std::unique_ptr<random::Rng> affinity_rng_;
};

TEST_F(AffinityPolicyTest, LambdaZeroMatchesDyGroupsGain) {
  LinearGain gain(0.5);
  BiCriteriaOptions options;
  options.lambda = 0.0;
  AffinityDyGroupsPolicy policy(InteractionMode::kStar, gain,
                                AffinityMatrix::Random(20, *affinity_rng_),
                                17, options);
  auto grouping = policy.FormGroups(skills_, 4);
  ASSERT_TRUE(grouping.ok());
  auto dygroups = DyGroupsStarLocal(skills_, 4);
  ASSERT_TRUE(dygroups.ok());
  double policy_gain =
      EvaluateRoundGain(InteractionMode::kStar, grouping.value(), gain,
                        skills_)
          .value();
  double dygroups_gain =
      EvaluateRoundGain(InteractionMode::kStar, dygroups.value(), gain,
                        skills_)
          .value();
  // Hill climbing from the optimal seed with lambda = 0 cannot improve the
  // gain (Theorem 1) and never accepts a worsening swap.
  EXPECT_NEAR(policy_gain, dygroups_gain, 1e-9);
}

TEST_F(AffinityPolicyTest, LargerLambdaTradesGainForAffinity) {
  LinearGain gain(0.5);
  AffinityMatrix affinity = AffinityMatrix::Random(20, *affinity_rng_);

  BiCriteriaOptions gain_only;
  gain_only.lambda = 0.0;
  AffinityDyGroupsPolicy policy_gain_only(InteractionMode::kStar, gain,
                                          affinity, 19, gain_only);
  ASSERT_TRUE(policy_gain_only.FormGroups(skills_, 4).ok());

  BiCriteriaOptions affinity_heavy;
  affinity_heavy.lambda = 100.0;
  affinity_heavy.refinement_iterations = 3000;
  AffinityDyGroupsPolicy policy_affinity(InteractionMode::kStar, gain,
                                         affinity, 19, affinity_heavy);
  ASSERT_TRUE(policy_affinity.FormGroups(skills_, 4).ok());

  EXPECT_GE(policy_affinity.last_affinity(),
            policy_gain_only.last_affinity());
  EXPECT_LE(policy_affinity.last_gain(),
            policy_gain_only.last_gain() + 1e-9);
}

TEST_F(AffinityPolicyTest, AffinityEvolvesAcrossRounds) {
  LinearGain gain(0.5);
  AffinityDyGroupsPolicy policy(InteractionMode::kStar, gain,
                                AffinityMatrix(20), 23);
  double before = policy.affinity().MeanAffinity();
  ASSERT_TRUE(policy.FormGroups(skills_, 4).ok());
  double after = policy.affinity().MeanAffinity();
  EXPECT_GT(after, before);  // mates bonded, nothing to decay from zero
}

TEST_F(AffinityPolicyTest, RejectsMismatchedPopulation) {
  LinearGain gain(0.5);
  AffinityDyGroupsPolicy policy(InteractionMode::kStar, gain,
                                AffinityMatrix(8), 29);
  EXPECT_FALSE(policy.FormGroups(skills_, 4).ok());
}

}  // namespace
}  // namespace tdg
