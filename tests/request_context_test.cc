// Tests for the request-tracing plane (DESIGN.md §14): trace-id minting,
// thread-local context binding, per-phase accumulation, the flight-recorder
// round trip (a request's kRequestStart/Phase/End records are recoverable
// from a dump by trace id), and the TailSampler's retention rules.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/request_context.h"
#include "obs/tail_sampler.h"
#include "util/json.h"

namespace tdg::obs {
namespace {

TEST(RequestContextTest, MintTraceIdIsNonzero48BitAndUnique) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t id = MintTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_LT(id, 1ull << 48);  // exact in a double payload slot
    // Round-trips through the blackbox's double slots without loss.
    EXPECT_EQ(static_cast<uint64_t>(static_cast<double>(id)), id);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(RequestContextTest, PhaseNames) {
  EXPECT_EQ(RequestPhaseName(RequestPhase::kParse), "parse");
  EXPECT_EQ(RequestPhaseName(RequestPhase::kLockWait), "lock_wait");
  EXPECT_EQ(RequestPhaseName(RequestPhase::kJournal), "journal_fsync");
  EXPECT_EQ(RequestPhaseName(RequestPhase::kCompute), "compute");
  EXPECT_EQ(RequestPhaseName(RequestPhase::kSerialize), "serialize");
}

TEST(RequestContextTest, NoContextBoundOutsideScope) {
  EXPECT_EQ(CurrentRequestContext(), nullptr);
  {
    RequestContext context;
    context.trace_id = MintTraceId();
    ScopedRequestContext scoped(context);
    EXPECT_EQ(CurrentRequestContext(), &context);
  }
  EXPECT_EQ(CurrentRequestContext(), nullptr);
}

TEST(RequestContextTest, ScopedBindingStacksAndRestores) {
  RequestContext outer;
  outer.trace_id = MintTraceId();
  ScopedRequestContext scoped_outer(outer);
  {
    RequestContext inner;
    inner.trace_id = MintTraceId();
    ScopedRequestContext scoped_inner(inner);
    EXPECT_EQ(CurrentRequestContext(), &inner);
  }
  EXPECT_EQ(CurrentRequestContext(), &outer);
}

TEST(RequestContextTest, PhasesAccumulateIntoBoundContext) {
  RequestContext context;
  context.trace_id = MintTraceId();
  ScopedRequestContext scoped(context);
  {
    ScopedRequestPhase phase(RequestPhase::kCompute);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    ScopedRequestPhase phase(RequestPhase::kCompute);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    ScopedRequestPhase phase(RequestPhase::kJournal);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto compute_index = static_cast<int>(RequestPhase::kCompute);
  const auto journal_index = static_cast<int>(RequestPhase::kJournal);
  EXPECT_GE(context.phase_micros[compute_index], 4000);  // both scopes added
  EXPECT_GE(context.phase_micros[journal_index], 1000);
  EXPECT_EQ(context.phase_micros[static_cast<int>(RequestPhase::kParse)], 0);
}

TEST(RequestContextTest, PhaseIsNoOpWhenUnbound) {
  ASSERT_EQ(CurrentRequestContext(), nullptr);
  // Must not crash or record anywhere.
  ScopedRequestPhase phase(RequestPhase::kLockWait);
}

TEST(RequestContextTest, FinishStampsStatusAndTotal) {
  RequestContext context;
  context.trace_id = MintTraceId();
  context.endpoint = "advance";
  {
    ScopedRequestContext scoped(context);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    FinishRequest(context, 200);
  }
  EXPECT_EQ(context.status, 200);
  EXPECT_GE(context.total_micros, 1000);
  EXPECT_GT(context.start_unix_ms, 0);
}

TEST(RequestContextTest, BlackboxRoundTripByTraceId) {
  const std::string path = testing::TempDir() + "/request_trace.bin";
  FlightRecorder::Options options;
  options.path = path;
  ASSERT_TRUE(FlightRecorder::Global().Start(options).ok());

  RequestContext context;
  context.trace_id = MintTraceId();
  context.endpoint = "advance";
  {
    ScopedRequestContext scoped(context);
    { ScopedRequestPhase phase(RequestPhase::kLockWait); }
    { ScopedRequestPhase phase(RequestPhase::kCompute); }
    FinishRequest(context, 200);
  }
  FlightRecorder::Global().Stop();

  auto dump = ReadBlackbox(path);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  const double want_id = static_cast<double>(context.trace_id);
  int starts = 0, phases = 0, ends = 0;
  for (const BlackboxEvent& event : dump->events) {
    if (event.values[0] != want_id) continue;
    switch (event.type) {
      case BlackboxEventType::kRequestStart:
        ++starts;
        break;
      case BlackboxEventType::kRequestPhase:
        ++phases;
        break;
      case BlackboxEventType::kRequestEnd:
        ++ends;
        EXPECT_EQ(static_cast<int>(event.values[1]), 200);  // status
        EXPECT_EQ(static_cast<uint32_t>(event.values[3]),
                  EndpointHash("advance"));
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(phases, 2);
  EXPECT_EQ(ends, 1);
}

RequestContext MakeTrace(uint64_t trace_id, const std::string& endpoint,
                         int status, int64_t total_micros) {
  RequestContext context;
  context.trace_id = trace_id;
  context.endpoint = endpoint;
  context.status = status;
  context.start_unix_ms = 1700000000000;
  context.total_micros = total_micros;
  context.phase_micros[static_cast<int>(RequestPhase::kCompute)] =
      total_micros / 2;
  return context;
}

TEST(TailSamplerTest, ThresholdSelectsSlowRequests) {
  TailSampler::Options options;
  options.slow_threshold_micros = 1000;
  options.sample_every = 0;  // isolate the threshold leg
  TailSampler sampler(options);
  sampler.Offer(MakeTrace(1, "advance", 200, 500));   // fast — dropped
  sampler.Offer(MakeTrace(2, "advance", 200, 5000));  // slow — kept
  const std::string jsonl = sampler.SlowTracesJsonl();
  // Object keys serialize sorted, so trace_id is the closing field.
  EXPECT_EQ(jsonl.find("\"trace_id\":1}"), std::string::npos);
  EXPECT_NE(jsonl.find("\"trace_id\":2}"), std::string::npos);
  EXPECT_NE(jsonl.find("\"compute_micros\":2500"), std::string::npos);
  EXPECT_NE(jsonl.find("\"lock_wait_micros\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"journal_fsync_micros\":0"), std::string::npos);
  EXPECT_EQ(sampler.offered(), 2);
}

TEST(TailSamplerTest, ZeroThresholdKeepsEverything) {
  TailSampler::Options options;
  options.slow_threshold_micros = 0;
  TailSampler sampler(options);
  for (uint64_t i = 1; i <= 5; ++i) {
    sampler.Offer(MakeTrace(i, "join", 200, 10));
  }
  std::string jsonl = sampler.SlowTracesJsonl();
  int lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 5);
  // Newest first.
  EXPECT_LT(jsonl.find("\"trace_id\":5}"), jsonl.find("\"trace_id\":1}"));
}

TEST(TailSamplerTest, SampleLegKeepsEveryNth) {
  TailSampler::Options options;
  options.slow_threshold_micros = 1000000;  // nothing is slow
  options.sample_every = 4;
  TailSampler sampler(options);
  for (uint64_t i = 1; i <= 12; ++i) {
    sampler.Offer(MakeTrace(i, "join", 200, 10));
  }
  std::string jsonl = sampler.SlowTracesJsonl();
  int lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 3);  // 1 in 4 of 12
  // Sampled (not slow) traces are marked slow:false.
  EXPECT_NE(jsonl.find("\"slow\":false"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"slow\":true"), std::string::npos);
}

TEST(TailSamplerTest, CapacitiesBoundBothRings) {
  TailSampler::Options options;
  options.slow_threshold_micros = 0;
  options.slow_capacity = 8;
  options.recent_capacity = 4;
  TailSampler sampler(options);
  for (uint64_t i = 1; i <= 100; ++i) {
    sampler.Offer(MakeTrace(i, "leave", 200, 99));
  }
  std::string jsonl = sampler.SlowTracesJsonl();
  int lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, 8);
  EXPECT_NE(jsonl.find("\"trace_id\":100}"), std::string::npos);  // newest kept
  EXPECT_EQ(jsonl.find("\"trace_id\":92}"), std::string::npos);   // oldest gone

  const util::JsonValue recent = sampler.RecentTracesJson();
  ASSERT_TRUE(recent.is_object());
  const auto traces = recent.GetField("traces");
  ASSERT_TRUE(traces.ok());
  ASSERT_EQ(traces->AsArray().size(), 4u);
  // Newest first.
  EXPECT_EQ(traces->AsArray()[0].GetField("trace_id")->AsNumber(), 100.0);
  EXPECT_EQ(traces->AsArray()[3].GetField("trace_id")->AsNumber(), 97.0);
}

TEST(TailSamplerTest, RecentTraceFieldsMatchContext) {
  TailSampler sampler;
  sampler.Offer(MakeTrace(42, "advance", 503, 1234));
  const util::JsonValue recent = sampler.RecentTracesJson();
  const auto traces = recent.GetField("traces");
  ASSERT_TRUE(traces.ok());
  ASSERT_EQ(traces->AsArray().size(), 1u);
  const util::JsonValue& trace = traces->AsArray()[0];
  EXPECT_EQ(trace.GetField("trace_id")->AsNumber(), 42.0);
  EXPECT_EQ(trace.GetField("endpoint")->AsString(), "advance");
  EXPECT_EQ(trace.GetField("status")->AsNumber(), 503.0);
  EXPECT_EQ(trace.GetField("total_micros")->AsNumber(), 1234.0);
}

TEST(TailSamplerTest, OfferIsThreadSafe) {
  TailSampler::Options options;
  options.slow_threshold_micros = 0;
  TailSampler sampler(options);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sampler, t] {
      for (uint64_t i = 0; i < 250; ++i) {
        sampler.Offer(
            MakeTrace(static_cast<uint64_t>(t) * 1000 + i, "join", 200, 7));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(sampler.offered(), 1000);
  // Both rings still within capacity after concurrent pushes.
  std::string jsonl = sampler.SlowTracesJsonl();
  int lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_LE(lines, sampler.options().slow_capacity);
}

}  // namespace
}  // namespace tdg::obs
