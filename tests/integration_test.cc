// End-to-end flows across modules: generate -> persist -> reload -> run all
// policies -> analyze -> export, mirroring what a downstream user of the
// library would script.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "baselines/registry.h"
#include "core/dygroups.h"
#include "core/metrics.h"
#include "core/process.h"
#include "io/population_io.h"
#include "io/series_io.h"
#include "random/distributions.h"
#include "stats/descriptive.h"
#include "stats/inequality.h"

namespace tdg {
namespace {

TEST(IntegrationTest, FullPipelineAcrossAllPolicies) {
  // 1. Generate a population and round-trip it through CSV.
  random::Rng rng(42);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 60);
  std::string path = testing::TempDir() + "/tdg_integration_population.csv";
  ASSERT_TRUE(io::WriteSkills(path, skills).ok());
  auto reloaded = io::ReadSkills(path);
  ASSERT_TRUE(reloaded.ok());
  std::remove(path.c_str());

  // 2. Run every registered policy on the reloaded population.
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 5;
  config.num_rounds = 5;
  config.mode = InteractionMode::kStar;

  std::map<std::string, double> total_gains;
  for (const std::string& name : baselines::AllPolicyNames()) {
    auto policy = baselines::MakePolicy(name, 7);
    ASSERT_TRUE(policy.ok());
    auto result = RunProcess(reloaded.value(), config, gain, **policy);
    ASSERT_TRUE(result.ok()) << name;
    total_gains[name] = result->total_gain;

    // Invariants hold for every policy.
    EXPECT_NEAR(result->total_gain,
                stats::Sum(result->final_skills) -
                    stats::Sum(result->initial_skills),
                1e-9);
    for (const RoundRecord& record : result->history) {
      EXPECT_TRUE(record.grouping.ValidateEquiSized(60).ok());
    }
  }

  // 3. DyGroups-Star wins its own mode.
  for (const auto& [name, total] : total_gains) {
    EXPECT_LE(total, total_gains["DyGroups-Star"] + 1e-9) << name;
  }

  // 4. Analyze the winner's trajectory with the metrics module.
  auto policy = baselines::MakePolicy("DyGroups-Star", 7);
  ASSERT_TRUE(policy.ok());
  auto result = RunProcess(reloaded.value(), config, gain, **policy);
  ASSERT_TRUE(result.ok());
  const SkillVector* before = &result->initial_skills;
  for (const RoundRecord& record : result->history) {
    auto metrics =
        ComputeRoundMetrics(record.grouping, *before, record.skills_after);
    ASSERT_TRUE(metrics.ok());
    EXPECT_DOUBLE_EQ(metrics->teacher_coverage, 1.0);
    EXPECT_NEAR(metrics->round_gain, record.gain, 1e-9);
    before = &record.skills_after;
  }

  // 5. Export a series of the per-round gains.
  io::ExperimentSeries series;
  series.x_label = "round";
  series.series_names = {"gain"};
  for (size_t t = 0; t < result->round_gains.size(); ++t) {
    series.x_values.push_back(static_cast<double>(t + 1));
  }
  series.values = {result->round_gains};
  std::string series_path = testing::TempDir() + "/tdg_integration_series.csv";
  ASSERT_TRUE(series.WriteCsv(series_path).ok());
  std::remove(series_path.c_str());
}

TEST(IntegrationTest, InequalityFallsUnderAllPolicies) {
  random::Rng rng(43);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 50);
  LinearGain gain(0.3);
  ProcessConfig config;
  config.num_groups = 5;
  config.num_rounds = 8;
  config.mode = InteractionMode::kClique;

  for (const std::string& name : baselines::AllPolicyNames()) {
    auto policy = baselines::MakePolicy(name, 9);
    ASSERT_TRUE(policy.ok());
    auto result = RunProcess(skills, config, gain, **policy);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_LT(stats::GiniIndex(result->final_skills),
              stats::GiniIndex(skills))
        << name;
    EXPECT_LT(stats::CoefficientOfVariation(result->final_skills),
              stats::CoefficientOfVariation(skills))
        << name;
  }
}

TEST(IntegrationTest, LongHorizonConvergesTowardTopSkill) {
  random::Rng rng(44);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kUniform, 40);
  for (double& s : skills) s += 1e-6;
  double top = *std::max_element(skills.begin(), skills.end());

  DyGroupsStarPolicy policy;
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 4;
  config.num_rounds = 64;
  config.record_history = false;
  auto result = RunProcess(skills, config, gain, policy);
  ASSERT_TRUE(result.ok());
  for (double s : result->final_skills) {
    EXPECT_NEAR(s, top, 1e-6);
  }
}

}  // namespace
}  // namespace tdg
