#include "core/theory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "random/distributions.h"

namespace tdg {
namespace {

TEST(RateOneSaturationTest, PredictionFormula) {
  // t = n/k; rounds = ceil(log_t(n)).
  EXPECT_EQ(PredictedRateOneSaturationRounds(9, 3).value(), 2);   // t=3
  EXPECT_EQ(PredictedRateOneSaturationRounds(8, 4).value(), 3);   // t=2
  EXPECT_EQ(PredictedRateOneSaturationRounds(16, 8).value(), 4);  // t=2
  EXPECT_EQ(PredictedRateOneSaturationRounds(1000, 100).value(), 3);  // t=10
  EXPECT_EQ(PredictedRateOneSaturationRounds(4, 1).value(), 1);   // t=4
}

TEST(RateOneSaturationTest, PredictionRejectsBadShapes) {
  EXPECT_FALSE(PredictedRateOneSaturationRounds(7, 2).ok());
  EXPECT_FALSE(PredictedRateOneSaturationRounds(4, 4).ok());  // t = 1
  EXPECT_FALSE(PredictedRateOneSaturationRounds(1, 1).ok());
}

// The paper's §V-B2 note: with r = 1 it takes log_{n/k}(n) rounds for
// everyone to reach the top skill under DyGroups — simulation must match
// the closed form (with distinct skills, so exactly one initial maximum).
TEST(RateOneSaturationTest, SimulationMatchesPrediction) {
  random::Rng rng(3);
  struct Shape {
    int n, k;
  };
  for (Shape shape : {Shape{9, 3}, Shape{16, 8}, Shape{64, 16},
                      Shape{100, 20}, Shape{1000, 100}}) {
    SkillVector skills;
    skills.reserve(shape.n);
    for (int i = 0; i < shape.n; ++i) {
      skills.push_back(1.0 + static_cast<double>(i) +
                       0.5 * rng.NextDouble());
    }
    // shuffle
    for (int i = shape.n - 1; i > 0; --i) {
      int j =
          static_cast<int>(rng.NextBounded(static_cast<uint64_t>(i + 1)));
      std::swap(skills[i], skills[j]);
    }
    int predicted = PredictedRateOneSaturationRounds(shape.n, shape.k).value();
    int simulated =
        SimulateRateOneStarSaturation(skills, shape.k).value();
    EXPECT_EQ(simulated, predicted)
        << "n=" << shape.n << " k=" << shape.k;
  }
}

TEST(RateOneSaturationTest, AlreadySaturatedIsZeroRounds) {
  SkillVector uniform(8, 3.0);
  EXPECT_EQ(SimulateRateOneStarSaturation(uniform, 2).value(), 0);
}

TEST(DeficitLowerBoundTest, GeometricEnvelope) {
  EXPECT_DOUBLE_EQ(DeficitLowerBound(10.0, 0.5, 0), 10.0);
  EXPECT_DOUBLE_EQ(DeficitLowerBound(10.0, 0.5, 3), 1.25);
  EXPECT_DOUBLE_EQ(DeficitLowerBound(10.0, 0.9, 1), 1.0);
}

// No process can shed deficit faster than the geometric envelope — the
// simulated rounds-to-fraction is always >= the envelope's bound.
TEST(RoundsToDeficitFractionTest, RespectsGeometricEnvelope) {
  random::Rng rng(5);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 60);
  for (double fraction : {0.5, 0.1, 0.01}) {
    double r = 0.5;
    auto rounds = RoundsToDeficitFraction(skills, 5, InteractionMode::kStar,
                                          r, fraction);
    ASSERT_TRUE(rounds.ok());
    // Envelope: fraction >= (1-r)^rounds  =>  rounds >= log(fraction)/log(1-r).
    int envelope_rounds = static_cast<int>(
        std::ceil(std::log(fraction) / std::log(1.0 - r) - 1e-9));
    EXPECT_GE(rounds.value(), envelope_rounds) << fraction;
    EXPECT_LT(rounds.value(), 10000);
  }
}

TEST(RoundsToDeficitFractionTest, MonotoneInTargetFraction) {
  random::Rng rng(7);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 40);
  auto half = RoundsToDeficitFraction(skills, 4, InteractionMode::kClique,
                                      0.5, 0.5);
  auto tenth = RoundsToDeficitFraction(skills, 4, InteractionMode::kClique,
                                       0.5, 0.1);
  ASSERT_TRUE(half.ok() && tenth.ok());
  EXPECT_LE(half.value(), tenth.value());
}

TEST(RoundsToDeficitFractionTest, RejectsBadArguments) {
  SkillVector skills = {1.0, 2.0, 3.0, 4.0};
  EXPECT_FALSE(RoundsToDeficitFraction(skills, 2, InteractionMode::kStar,
                                       0.5, 1.5)
                   .ok());
  EXPECT_FALSE(RoundsToDeficitFraction(skills, 3, InteractionMode::kStar,
                                       0.5, 0.5)
                   .ok());
  SkillVector converged(6, 2.0);
  EXPECT_EQ(RoundsToDeficitFraction(converged, 2, InteractionMode::kStar,
                                    0.5, 0.5)
                .value(),
            0);
}

}  // namespace
}  // namespace tdg
