// Tests for obs::RunManifest — the provenance record attached to every
// bench report / sweep / CLI run. Covers Capture() field population, the
// ToJson/FromJson round-trip, forward-compatible parsing, and a golden
// file over the Normalized() form (volatile fields pinned to placeholders
// so the golden bytes only change when the schema does).
//
// To regenerate after an intentional schema change:
//   TDG_UPDATE_GOLDEN=1 ./build/tests/tdg_tests \
//       --gtest_filter='RunManifestGoldenTest.*'

#include "obs/run_manifest.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.h"

#ifndef TDG_TESTS_GOLDEN_DIR
#error "TDG_TESTS_GOLDEN_DIR must be defined by tests/CMakeLists.txt"
#endif

namespace tdg::obs {
namespace {

TEST(RunManifestTest, CapturePopulatesProvenance) {
  const char* argv[] = {"/path/to/bench_binary", "--n=100", "--k=5"};
  RunManifest manifest = RunManifest::Capture(/*seed=*/1234, 3, argv);

  EXPECT_EQ(manifest.schema, RunManifest::kSchema);
  EXPECT_FALSE(manifest.git_sha.empty());
  EXPECT_FALSE(manifest.compiler.empty());
  EXPECT_FALSE(manifest.build_type.empty());
  EXPECT_FALSE(manifest.os.empty());
  EXPECT_GT(manifest.hardware_threads, 0);
  EXPECT_EQ(manifest.seed, 1234u);
  ASSERT_EQ(manifest.args.size(), 2u);  // argv[0] is not an argument
  EXPECT_EQ(manifest.args[0], "--n=100");
  EXPECT_EQ(manifest.args[1], "--k=5");
  // ISO 8601 UTC: "YYYY-MM-DDTHH:MM:SSZ".
  ASSERT_EQ(manifest.timestamp_utc.size(), 20u);
  EXPECT_EQ(manifest.timestamp_utc[10], 'T');
  EXPECT_EQ(manifest.timestamp_utc.back(), 'Z');
}

TEST(RunManifestTest, JsonRoundTripIsLossless) {
  const char* argv[] = {"bench", "--alpha=5"};
  RunManifest manifest = RunManifest::Capture(/*seed=*/42, 2, argv);
  auto parsed = RunManifest::FromJson(manifest.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value(), manifest);
}

TEST(RunManifestTest, RoundTripSurvivesSerializedText) {
  RunManifest manifest = RunManifest::Capture(/*seed=*/7);
  std::string text = manifest.ToJson().SerializePretty();
  auto json = util::JsonValue::Parse(text);
  ASSERT_TRUE(json.ok()) << json.status();
  auto parsed = RunManifest::FromJson(json.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value(), manifest);
}

TEST(RunManifestTest, FromJsonRejectsMissingOrWrongSchema) {
  util::JsonValue no_schema = util::JsonValue::MakeObject();
  EXPECT_FALSE(RunManifest::FromJson(no_schema).ok());

  util::JsonValue wrong = util::JsonValue::MakeObject();
  wrong.Set("schema", "tdg.run_manifest.v999");
  EXPECT_FALSE(RunManifest::FromJson(wrong).ok());

  EXPECT_FALSE(RunManifest::FromJson(util::JsonValue(3.0)).ok());
}

TEST(RunManifestTest, FromJsonIgnoresUnknownFields) {
  RunManifest manifest = RunManifest::Capture(/*seed=*/9);
  util::JsonValue json = manifest.ToJson();
  json.Set("future_field", "from a newer writer");
  auto parsed = RunManifest::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value(), manifest);
}

TEST(RunManifestTest, NormalizedPinsVolatileFieldsOnly) {
  const char* argv[] = {"bench", "--r=0.5"};
  RunManifest manifest = RunManifest::Capture(/*seed=*/55, 2, argv);
  RunManifest normalized = manifest.Normalized();

  // Volatile fields become placeholders...
  EXPECT_EQ(normalized.git_sha, "<git-sha>");
  EXPECT_EQ(normalized.hostname, "<hostname>");
  EXPECT_EQ(normalized.timestamp_utc, "<timestamp>");
  EXPECT_EQ(normalized.hardware_threads, 0);
  // ...while run provenance survives.
  EXPECT_EQ(normalized.schema, manifest.schema);
  EXPECT_EQ(normalized.seed, 55u);
  EXPECT_EQ(normalized.args, manifest.args);
  // Normalizing twice is a fixed point.
  EXPECT_EQ(normalized.Normalized(), normalized);
}

std::string GoldenPath(const std::string& file) {
  return std::string(TDG_TESTS_GOLDEN_DIR) + "/" + file;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open golden file " << path
                         << " (regenerate with TDG_UPDATE_GOLDEN=1)";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(RunManifestGoldenTest, NormalizedJsonMatchesGolden) {
  const char* argv[] = {"bench_golden", "--n=100", "--seed=11"};
  RunManifest manifest = RunManifest::Capture(/*seed=*/11, 3, argv);
  const std::string serialized =
      manifest.Normalized().ToJson().SerializePretty() + "\n";
  const std::string path = GoldenPath("run_manifest.json");

  if (std::getenv("TDG_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
    out << serialized;
    GTEST_SKIP() << "regenerated " << path;
  }

  EXPECT_EQ(serialized, ReadFile(path))
      << "normalized manifest drifted from tests/golden/run_manifest.json; "
         "if the schema change is intentional, regenerate with "
         "TDG_UPDATE_GOLDEN=1";

  // The golden bytes parse back into the normalized manifest.
  auto json = util::JsonValue::Parse(serialized);
  ASSERT_TRUE(json.ok()) << json.status();
  auto parsed = RunManifest::FromJson(json.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value(), manifest.Normalized());
}

}  // namespace
}  // namespace tdg::obs
