// Child binary for the crash-injection integration test
// (sweep_crash_test.cc): runs one shard of a sweep against a checkpoint
// file, exactly like `example_tdg_cli sweep --checkpoint=...` but with the
// metrics registry disabled so every output byte is deterministic. The
// parent test sets TDG_TEST_CRASH_AFTER_CELLS to kill this process mid-run
// (the hook lives in exp::RunSweepShard, compiled under TDG_TEST_HOOKS).
//
//   tdg_sweep_shard_child --config=<file> --checkpoint=<file>
//                         [--shard_index=<i>] [--shard_count=<s>]
//                         [--resume] [--threads=<t>]
//                         [--blackbox=<file>]
//
// --blackbox starts the global flight recorder on <file> before the shard
// runs, so crash tests can assert the black box is decodable after the
// simulated kill (flight_recorder_test.cc, ci/check.sh blackbox config).
//
// Exit codes: 0 shard completed; 1 error; 42 simulated crash (the hook
// calls _Exit before main can return).

#include <cstdio>
#include <string>

#include "exp/sweep_shard.h"
#include "obs/obs.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  auto parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "error: %s\n", parse_status.ToString().c_str());
    return 1;
  }
  tdg::obs::SetMetricsEnabled(false);  // mean_micros must be 0, not timing

  const std::string blackbox = flags.GetString("blackbox", "");
  if (!blackbox.empty()) {
    tdg::obs::FlightRecorder::Options recorder_options;
    recorder_options.path = blackbox;
    auto status =
        tdg::obs::FlightRecorder::Global().Start(recorder_options);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  auto config =
      tdg::exp::SweepConfig::FromFile(flags.GetString("config", ""));
  if (!config.ok()) {
    std::fprintf(stderr, "error: %s\n", config.status().ToString().c_str());
    return 1;
  }
  const long long threads = flags.GetInt("threads", 0);
  if (threads > 0) config->threads = static_cast<int>(threads);

  tdg::exp::SweepShardOptions options;
  options.shard_index = static_cast<int>(flags.GetInt("shard_index", 0));
  options.shard_count = static_cast<int>(flags.GetInt("shard_count", 1));
  options.checkpoint_path = flags.GetString("checkpoint", "");
  options.resume = flags.GetBool("resume", false);

  auto result = tdg::exp::RunSweepShard(config.value(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  // A clean exit stamps the clean-shutdown flag — crash tests assert its
  // absence to tell a black box of a kill from one of a completed run.
  if (!blackbox.empty()) tdg::obs::FlightRecorder::Global().Stop();
  std::printf("shard %d/%d: %zu cells (%d restored, %d run)\n",
              options.shard_index, options.shard_count,
              result->result.cells.size(), result->cells_restored,
              result->cells_run);
  return 0;
}
