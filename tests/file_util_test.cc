#include "util/file_util.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <utility>

#include "sweep_shard_test_util.h"

namespace tdg::util {
namespace {

class FileUtilTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = test::MakeScratchDir(); }
  std::string Path(const std::string& name) const {
    return dir_ + "/" + name;
  }
  std::string dir_;
};

TEST_F(FileUtilTest, FileExistsReflectsCreation) {
  const std::string path = Path("exists.txt");
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteFileAtomic(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
}

TEST_F(FileUtilTest, ReadFileToStringRoundTripsBinaryContent) {
  const std::string path = Path("bin.dat");
  const std::string content("a\0b\nc\r\nd", 8);
  ASSERT_TRUE(WriteFileAtomic(path, content).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read.value(), content);
}

TEST_F(FileUtilTest, ReadMissingFileIsIOError) {
  auto read = ReadFileToString(Path("missing.txt"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST_F(FileUtilTest, WriteFileAtomicReplacesWholeContent) {
  const std::string path = Path("replace.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "first version, long content").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read.value(), "second");
  // No temporary litter left behind.
  EXPECT_FALSE(FileExists(path + ".tmp." + std::to_string(::getpid())));
}

TEST_F(FileUtilTest, FileSizeAndTruncate) {
  const std::string path = Path("trunc.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "0123456789").ok());
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok()) << size.status();
  EXPECT_EQ(size.value(), 10u);
  ASSERT_TRUE(TruncateFile(path, 4).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "0123");
  EXPECT_FALSE(TruncateFile(Path("missing.txt"), 0).ok());
}

TEST_F(FileUtilTest, DurableAppendFileAppendsAcrossReopen) {
  const std::string path = Path("append.jsonl");
  {
    auto file = DurableAppendFile::Open(path);
    ASSERT_TRUE(file.ok()) << file.status();
    ASSERT_TRUE(file->AppendLine("one").ok());
    ASSERT_TRUE(file->AppendLine("two").ok());
  }
  {
    // Reopen must append, never truncate — that is the resume contract.
    auto file = DurableAppendFile::Open(path);
    ASSERT_TRUE(file.ok()) << file.status();
    ASSERT_TRUE(file->AppendLine("three").ok());
  }
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "one\ntwo\nthree\n");
}

TEST_F(FileUtilTest, AppendAfterTruncateDropsTornTailCleanly) {
  // The resume flow: a torn final line is truncated away, then appends
  // continue — the new record must start on a fresh line, not concatenate
  // onto the partial one.
  const std::string path = Path("torn.jsonl");
  {
    auto file = DurableAppendFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->AppendLine("complete").ok());
    ASSERT_TRUE(file->AppendLine("torn-record").ok());
  }
  ASSERT_TRUE(TruncateFile(path, 9 + 4).ok());  // cut inside "torn-record"
  {
    auto file = DurableAppendFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(TruncateFile(path, 9).ok());  // resume drops the torn tail
    ASSERT_TRUE(file->AppendLine("rerun").ok());
  }
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "complete\nrerun\n");
}

TEST_F(FileUtilTest, AppendToClosedFileFails) {
  DurableAppendFile file;
  EXPECT_FALSE(file.is_open());
  EXPECT_EQ(file.AppendLine("x").code(), StatusCode::kFailedPrecondition);
}

TEST_F(FileUtilTest, MoveTransfersOwnership) {
  const std::string path = Path("move.jsonl");
  auto file = DurableAppendFile::Open(path);
  ASSERT_TRUE(file.ok());
  DurableAppendFile moved = std::move(file).value();
  ASSERT_TRUE(moved.AppendLine("after-move").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), "after-move\n");
}

}  // namespace
}  // namespace tdg::util
