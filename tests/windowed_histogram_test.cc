// Property suite for obs::WindowedHistogram: randomized event streams on a
// simulated clock, with every rolling window cross-checked against a
// brute-force recompute (an obs::Histogram rebuilt from exactly the events
// the window should cover — the two share bucket geometry and quantile
// interpolation, so agreement must be exact). Plus the epoch-rotation edge
// cases: empty windows, idle gaps longer than the ring, bursts at the
// rotation boundary.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/windowed_histogram.h"
#include "random/rng.h"

namespace tdg::obs {
namespace {

constexpr int64_t kMicros = 1000000;

struct Event {
  int64_t at_micros = 0;
  double value = 0;
  bool error = false;
};

/// Brute-force reference: rebuild each window from the raw event list.
struct Reference {
  int64_t count = 0;
  int64_t errors = 0;
  Histogram histogram;  // same geometry + quantile math as the window
};

// Histogram holds atomics (non-movable), so the reference is filled in
// place rather than returned.
void Recompute(const std::vector<Event>& events, int64_t now_micros,
               int window_seconds, Reference* ref) {
  const int64_t now_second = now_micros / kMicros;
  for (const Event& event : events) {
    const int64_t second = event.at_micros / kMicros;
    if (second <= now_second - window_seconds || second > now_second) {
      continue;
    }
    ++ref->count;
    if (event.error) ++ref->errors;
    ref->histogram.Record(event.value);
  }
}

void ExpectMatchesReference(const WindowedHistogram& windowed,
                            const std::vector<Event>& events,
                            int64_t now_micros) {
  const WindowedHistogramStats stats = windowed.SnapshotAt(now_micros);
  ASSERT_EQ(stats.windows.size(), WindowedHistogram::kWindowSeconds.size());
  for (const WindowStats& w : stats.windows) {
    SCOPED_TRACE("window " + w.label);
    Reference ref;
    Recompute(events, now_micros, w.window_seconds, &ref);
    EXPECT_EQ(w.count, ref.count);
    EXPECT_EQ(w.errors, ref.errors);
    EXPECT_DOUBLE_EQ(
        w.qps, static_cast<double>(ref.count) / w.window_seconds);
    if (ref.count == 0) {
      EXPECT_EQ(w.p99, 0.0);
      EXPECT_EQ(w.error_rate, 0.0);
      continue;
    }
    EXPECT_DOUBLE_EQ(w.error_rate, static_cast<double>(ref.errors) /
                                       static_cast<double>(ref.count));
    EXPECT_DOUBLE_EQ(w.min, ref.histogram.Min());
    EXPECT_DOUBLE_EQ(w.max, ref.histogram.Max());
    // Sums fold per-epoch before dividing, so the mean can differ from the
    // sequential reference by a few ULPs; everything else is exact.
    EXPECT_NEAR(w.mean, ref.histogram.Mean(),
                1e-9 * std::abs(ref.histogram.Mean()) + 1e-12);
    EXPECT_DOUBLE_EQ(w.p50, ref.histogram.Quantile(0.50));
    EXPECT_DOUBLE_EQ(w.p95, ref.histogram.Quantile(0.95));
    EXPECT_DOUBLE_EQ(w.p99, ref.histogram.Quantile(0.99));
  }
}

TEST(WindowedHistogramTest, EmptyHistogramReportsZeroEverything) {
  WindowedHistogram windowed;
  const WindowedHistogramStats stats = windowed.SnapshotAt(1000 * kMicros);
  ASSERT_EQ(stats.windows.size(), 3u);
  EXPECT_EQ(stats.windows[0].label, "10s");
  EXPECT_EQ(stats.windows[1].label, "1m");
  EXPECT_EQ(stats.windows[2].label, "5m");
  for (const WindowStats& w : stats.windows) {
    EXPECT_EQ(w.count, 0);
    EXPECT_EQ(w.qps, 0.0);
    EXPECT_EQ(w.p99, 0.0);
    EXPECT_EQ(w.error_rate, 0.0);
  }
}

TEST(WindowedHistogramTest, WindowLabels) {
  EXPECT_EQ(WindowLabel(10), "10s");
  EXPECT_EQ(WindowLabel(60), "1m");
  EXPECT_EQ(WindowLabel(300), "5m");
  EXPECT_EQ(WindowLabel(45), "45s");
  EXPECT_EQ(WindowLabel(120), "2m");
}

TEST(WindowedHistogramTest, RandomizedStreamMatchesBruteForceRecompute) {
  random::Rng rng(20260808);
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    WindowedHistogram windowed;
    std::vector<Event> events;
    // A stream with irregular arrival: the clock advances 0–3 s between
    // events, so seconds are skipped and multi-event seconds both occur.
    int64_t now =
        5000 * kMicros + static_cast<int64_t>(rng.NextBounded(kMicros));
    const int num_events = 50 + static_cast<int>(rng.NextBounded(300));
    for (int i = 0; i < num_events; ++i) {
      now += static_cast<int64_t>(rng.NextBounded(3 * kMicros));
      Event event;
      event.at_micros = now;
      event.value = rng.NextDouble() * 1e6;
      event.error = rng.NextBounded(10) == 0;
      events.push_back(event);
      windowed.RecordAt(event.at_micros, event.value, event.error);
    }
    // Check at the last event time and a little after it.
    ExpectMatchesReference(windowed, events, now);
    ExpectMatchesReference(windowed, events, now + 7 * kMicros);
    ExpectMatchesReference(windowed, events, now + 45 * kMicros);
  }
}

TEST(WindowedHistogramTest, EventsExpireAsTheClockAdvances) {
  WindowedHistogram windowed;
  const int64_t base = 10000 * kMicros;
  windowed.RecordAt(base, 42.0);
  // Visible in all three windows at t=base.
  for (const WindowStats& w : windowed.SnapshotAt(base).windows) {
    EXPECT_EQ(w.count, 1) << w.label;
  }
  // 30 s later: out of the 10 s window, still in 1m and 5m.
  {
    const auto stats = windowed.SnapshotAt(base + 30 * kMicros);
    EXPECT_EQ(stats.windows[0].count, 0);
    EXPECT_EQ(stats.windows[1].count, 1);
    EXPECT_EQ(stats.windows[2].count, 1);
  }
  // 4 minutes later: only the 5m window still sees it.
  {
    const auto stats = windowed.SnapshotAt(base + 240 * kMicros);
    EXPECT_EQ(stats.windows[0].count, 0);
    EXPECT_EQ(stats.windows[1].count, 0);
    EXPECT_EQ(stats.windows[2].count, 1);
  }
  // 6 minutes later: gone everywhere.
  for (const WindowStats& w :
       windowed.SnapshotAt(base + 360 * kMicros).windows) {
    EXPECT_EQ(w.count, 0) << w.label;
  }
}

TEST(WindowedHistogramTest, IdleGapLongerThanTheRingReadsEmpty) {
  WindowedHistogram windowed;
  std::vector<Event> events;
  const int64_t base = 777 * kMicros;
  for (int i = 0; i < 100; ++i) {
    Event event{base + i * kMicros / 10, static_cast<double>(i), false};
    events.push_back(event);
    windowed.RecordAt(event.at_micros, event.value);
  }
  // Sleep past the whole ring (360 s) without recording: every stamped
  // epoch is stale, every window must read empty — and the brute-force
  // reference agrees because no event second is in range.
  const int64_t later = base + 2 * WindowedHistogram::kRingSeconds * kMicros;
  ExpectMatchesReference(windowed, events, later);
  for (const WindowStats& w : windowed.SnapshotAt(later).windows) {
    EXPECT_EQ(w.count, 0) << w.label;
  }
  // And the ring is immediately reusable after the gap.
  windowed.RecordAt(later, 5.0);
  EXPECT_EQ(windowed.SnapshotAt(later).windows[0].count, 1);
}

TEST(WindowedHistogramTest, BurstAtRotationBoundary) {
  WindowedHistogram windowed;
  std::vector<Event> events;
  // Straddle the ring's wrap second (kRingSeconds) with a dense burst:
  // half the events land in the slot about to be reclaimed, half in the
  // slot reclaiming it one lap later would alias to.
  const int64_t boundary = WindowedHistogram::kRingSeconds * kMicros;
  for (int i = -5; i < 5; ++i) {
    for (int j = 0; j < 7; ++j) {
      Event event{boundary + i * kMicros + j * 1000,
                  static_cast<double>(100 + i * 7 + j), false};
      events.push_back(event);
      windowed.RecordAt(event.at_micros, event.value);
    }
  }
  ExpectMatchesReference(windowed, events, boundary + 4 * kMicros);
  // One full lap later, record into the same slots the burst used; the
  // stale epochs must not leak into the fresh windows.
  const int64_t lap = boundary + WindowedHistogram::kRingSeconds * kMicros;
  events.push_back({lap, 9.0, false});
  windowed.RecordAt(lap, 9.0);
  ExpectMatchesReference(windowed, events, lap);
  const auto stats = windowed.SnapshotAt(lap);
  EXPECT_EQ(stats.windows[2].count, 1);  // only the fresh event
}

TEST(WindowedHistogramTest, OutputScaleAppliesToValueDomainOnly) {
  WindowedHistogram::Options options;
  options.output_scale = 1e-6;  // micros recorded, seconds reported
  WindowedHistogram windowed(options);
  const int64_t base = 50 * kMicros;
  windowed.RecordAt(base, 250000.0);         // 250 ms
  windowed.RecordAt(base + 1000, 750000.0);  // 750 ms
  const auto stats = windowed.SnapshotAt(base);
  const WindowStats& w = stats.windows[0];
  EXPECT_EQ(w.count, 2);                       // counts unscaled
  EXPECT_DOUBLE_EQ(w.qps, 0.2);                // rates unscaled
  EXPECT_DOUBLE_EQ(w.min, 0.25);               // seconds
  EXPECT_DOUBLE_EQ(w.max, 0.75);
  EXPECT_DOUBLE_EQ(w.mean, 0.5);
  EXPECT_GE(w.p99, 0.25);
  EXPECT_LE(w.p99, 0.75);
}

TEST(WindowedHistogramTest, ErrorRateCountsOnlyFlaggedEvents) {
  WindowedHistogram windowed;
  const int64_t base = 99 * kMicros;
  for (int i = 0; i < 8; ++i) {
    windowed.RecordAt(base + i * 1000, 10.0, /*error=*/i < 2);
  }
  const auto stats = windowed.SnapshotAt(base);
  const WindowStats& w = stats.windows[0];
  EXPECT_EQ(w.count, 8);
  EXPECT_EQ(w.errors, 2);
  EXPECT_DOUBLE_EQ(w.error_rate, 0.25);
}

TEST(WindowedHistogramTest, HonorsMetricsKillSwitch) {
  WindowedHistogram windowed;
  SetMetricsEnabled(false);
  windowed.RecordAt(5 * kMicros, 1.0);
  SetMetricsEnabled(true);
  windowed.RecordAt(5 * kMicros, 2.0);
  const auto stats = windowed.SnapshotAt(5 * kMicros);
  const WindowStats& w = stats.windows[0];
  EXPECT_EQ(w.count, 1);
  EXPECT_DOUBLE_EQ(w.max, 2.0);
}

TEST(WindowedHistogramTest, ResetClearsEveryWindow) {
  WindowedHistogram windowed;
  windowed.RecordAt(12 * kMicros, 3.0);
  windowed.Reset();
  for (const WindowStats& w : windowed.SnapshotAt(12 * kMicros).windows) {
    EXPECT_EQ(w.count, 0) << w.label;
  }
}

TEST(WindowedHistogramTest, RegistryRegistrationAndSnapshot) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::string name = "windowed_test/latency_seconds/probe";
  WindowedHistogram& windowed = registry.GetWindowed(name, 1e-6);
  EXPECT_EQ(&windowed, &registry.GetWindowed(name));  // same instance
  windowed.Record(1000.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.windowed.count(name), 1u);
  const auto& windows = snapshot.windowed.at(name).windows;
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].count, 1);
  EXPECT_DOUBLE_EQ(windows[0].max, 1e-3);  // scaled to seconds
}

}  // namespace
}  // namespace tdg::obs
