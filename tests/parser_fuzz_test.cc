// Deterministic fuzzing of the JSON and CSV parsers with the repo's own
// xoshiro RNG. Two properties:
//
//   1. Robustness — feeding arbitrary mutations of valid documents (byte
//      flips, truncations, splices, insertions) into Parse never crashes
//      and never trips a sanitizer; malformed input comes back as a Status
//      error, not undefined behavior.
//   2. Round-trip fixed point — for any VALID document,
//      serialize(parse(serialize(x))) == serialize(x): one
//      parse→serialize cycle reaches a fixed point, so serialization is a
//      canonical form.
//
// Seeds are fixed; the fuzz corpus is identical on every run and every
// platform (the point of xoshiro over std::random_device).

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "fuzz_mutate_test_util.h"
#include "random/rng.h"
#include "util/csv.h"
#include "util/json.h"

namespace tdg {
namespace {

// --- corpus generation ----------------------------------------------------

// A random valid JSON value of bounded depth. Numbers are integers or
// short decimals (NaN/Inf are unrepresentable in JSON and excluded by
// construction); strings mix printable ASCII with characters the
// serializer must escape.
util::JsonValue RandomJson(random::Rng& rng, int depth) {
  switch (rng.NextBounded(depth <= 0 ? 4 : 6)) {
    case 0:
      return util::JsonValue::Null();
    case 1:
      return util::JsonValue(rng.NextBounded(2) == 0);
    case 2: {
      if (rng.NextBounded(2) == 0) {
        return util::JsonValue(
            static_cast<long long>(rng.NextBounded(2001)) - 1000);
      }
      return util::JsonValue(rng.NextDouble() * 100.0 - 50.0);
    }
    case 3: {
      static const char kAlphabet[] = "abcXYZ019 _-.,:\"\\\n\t{}[]/";
      std::string s;
      uint64_t len = rng.NextBounded(9);
      for (uint64_t i = 0; i < len; ++i) {
        s.push_back(kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
      }
      return util::JsonValue(s);
    }
    case 4: {
      util::JsonValue array = util::JsonValue::MakeArray();
      uint64_t len = rng.NextBounded(4);
      for (uint64_t i = 0; i < len; ++i) {
        array.Append(RandomJson(rng, depth - 1));
      }
      return array;
    }
    default: {
      util::JsonValue object = util::JsonValue::MakeObject();
      uint64_t len = rng.NextBounded(4);
      for (uint64_t i = 0; i < len; ++i) {
        object.Set("k" + std::to_string(rng.NextBounded(100)),
                   RandomJson(rng, depth - 1));
      }
      return object;
    }
  }
}

// A random valid CSV document. The line-based parser does not support
// newlines inside quoted fields, so fields avoid \n and \r; commas and
// quotes exercise the quoting path.
std::string RandomCsv(random::Rng& rng) {
  std::vector<std::string> header;
  uint64_t cols = 1 + rng.NextBounded(4);
  for (uint64_t c = 0; c < cols; ++c) header.push_back("h" + std::to_string(c));
  util::CsvDocument doc(std::move(header));
  uint64_t rows = rng.NextBounded(5);
  for (uint64_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (uint64_t c = 0; c < cols; ++c) {
      static const char kAlphabet[] = "abz019 _-.,\"'%";
      std::string field;
      // A single-column row whose only field is empty would serialize to a
      // blank line, which Parse skips by design — keep that field non-empty.
      uint64_t len = (cols == 1) ? 1 + rng.NextBounded(7) : rng.NextBounded(8);
      for (uint64_t i = 0; i < len; ++i) {
        field.push_back(kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
      }
      row.push_back(std::move(field));
    }
    EXPECT_TRUE(doc.AddRow(std::move(row)).ok());
  }
  return doc.ToString();
}

// The mutation harness lives in fuzz_mutate_test_util.h (shared with the
// HTTP request fuzz suite); alias it into this file's historical name.
using test::Mutate;

// --- JSON -----------------------------------------------------------------

TEST(ParserFuzzTest, JsonMutationsNeverCrash) {
  random::Rng rng(0xF00D);
  std::string donor = RandomJson(rng, 3).Serialize();
  int parsed_ok = 0;
  for (int round = 0; round < 400; ++round) {
    std::string valid = RandomJson(rng, 3).Serialize();
    std::string mutated = Mutate(rng, valid, donor);
    // Must not crash, hang, or trip a sanitizer; any outcome is either a
    // value or a clean Status error.
    auto parsed = util::JsonValue::Parse(mutated);
    if (parsed.ok()) {
      ++parsed_ok;
      // Whatever survived mutation must still round-trip.
      auto reparsed = util::JsonValue::Parse(parsed->Serialize());
      ASSERT_TRUE(reparsed.ok()) << reparsed.status();
      EXPECT_TRUE(reparsed.value() == parsed.value());
    } else {
      EXPECT_FALSE(parsed.status().message().empty());
    }
    donor = std::move(mutated);
  }
  // The corpus is not degenerate: some mutants stay valid, most break.
  EXPECT_GT(parsed_ok, 0);
  EXPECT_LT(parsed_ok, 400);
}

TEST(ParserFuzzTest, JsonRoundTripFixedPoint) {
  random::Rng rng(0xBEEF);
  for (int round = 0; round < 300; ++round) {
    util::JsonValue value = RandomJson(rng, 4);
    std::string first = value.Serialize();
    auto parsed = util::JsonValue::Parse(first);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\ninput: " << first;
    EXPECT_TRUE(parsed.value() == value);
    EXPECT_EQ(parsed->Serialize(), first);
    // Pretty serialization parses back to the same value too.
    auto pretty = util::JsonValue::Parse(value.SerializePretty());
    ASSERT_TRUE(pretty.ok()) << pretty.status();
    EXPECT_TRUE(pretty.value() == value);
  }
}

// --- CSV ------------------------------------------------------------------

TEST(ParserFuzzTest, CsvMutationsNeverCrash) {
  random::Rng rng(0xCAFE);
  std::string donor = RandomCsv(rng);
  int parsed_ok = 0;
  for (int round = 0; round < 400; ++round) {
    std::string mutated = Mutate(rng, RandomCsv(rng), donor);
    auto parsed = util::CsvDocument::Parse(mutated);
    if (parsed.ok()) {
      ++parsed_ok;
      auto reparsed = util::CsvDocument::Parse(parsed->ToString());
      ASSERT_TRUE(reparsed.ok()) << reparsed.status();
      EXPECT_EQ(reparsed->ToString(), parsed->ToString());
    } else {
      EXPECT_FALSE(parsed.status().message().empty());
    }
    donor = std::move(mutated);
  }
  EXPECT_GT(parsed_ok, 0);
}

TEST(ParserFuzzTest, CsvRoundTripFixedPoint) {
  random::Rng rng(0xD1CE);
  for (int round = 0; round < 300; ++round) {
    std::string first = RandomCsv(rng);
    auto parsed = util::CsvDocument::Parse(first);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\ninput: " << first;
    EXPECT_EQ(parsed->ToString(), first);
  }
}

}  // namespace
}  // namespace tdg
