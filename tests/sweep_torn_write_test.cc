// Torn-write regression test (DESIGN.md §8 torn-line rule): a crash can
// leave the checkpoint's final JSONL record cut at ANY byte. For every
// possible truncation offset inside the final record, resume must (a)
// recover without error, (b) re-run exactly the one lost cell, (c) never
// double-count — the repaired checkpoint holds each cell exactly once —
// and (d) reproduce the uninterrupted run's output byte for byte.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "exp/sweep_shard.h"
#include "sweep_shard_test_util.h"
#include "util/file_util.h"

namespace tdg::exp {
namespace {

using test::CsvBytes;
using test::JsonBytes;
using test::MakeScratchDir;
using test::MetricsOffGuard;
using test::TinyConfig;

TEST(SweepTornWriteTest, ResumeRecoversFromEveryTruncationOffset) {
  MetricsOffGuard metrics_off;
  const std::string dir = MakeScratchDir();
  const std::string pristine = dir + "/pristine.ckpt";

  // Uninterrupted single-shard run: the reference bytes and the checkpoint
  // whose final record we will shred.
  SweepConfig config = TinyConfig(1);
  SweepShardOptions options;
  options.checkpoint_path = pristine;
  auto reference = RunSweepShard(config, options);
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string reference_csv = CsvBytes(reference->result);
  const std::string reference_json = JsonBytes(reference->result);

  auto content = util::ReadFileToString(pristine);
  ASSERT_TRUE(content.ok());
  const std::string& bytes = content.value();
  ASSERT_EQ(bytes.back(), '\n');
  // [record_start, bytes.size()) spans the final record including its
  // newline; truncating at record_start removes it whole (a crash just
  // before the append), every later offset leaves a torn prefix, and
  // bytes.size()-1 cuts only the trailing newline.
  const size_t record_start = bytes.find_last_of('\n', bytes.size() - 2) + 1;
  ASSERT_GT(record_start, 0u);
  ASSERT_LT(record_start, bytes.size());

  auto read_total_cells = [&](const std::string& path) {
    auto checkpoint = ReadSweepCheckpoint(path);
    EXPECT_TRUE(checkpoint.ok()) << checkpoint.status();
    if (!checkpoint.ok()) return std::make_pair(size_t{0}, false);
    std::set<long long> indices;
    for (const SweepCheckpointCell& record : checkpoint->cells) {
      EXPECT_TRUE(indices.insert(record.cell_index).second)
          << "cell " << record.cell_index << " double-counted";
    }
    return std::make_pair(checkpoint->cells.size(),
                          checkpoint->torn_tail_dropped);
  };

  for (size_t cut = record_start; cut < bytes.size(); ++cut) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                 std::to_string(bytes.size()) + " bytes");
    const std::string path =
        dir + "/torn_" + std::to_string(cut) + ".ckpt";
    ASSERT_TRUE(
        util::WriteFileAtomic(path, bytes.substr(0, cut)).ok());

    SweepShardOptions resume_options;
    resume_options.checkpoint_path = path;
    resume_options.resume = true;
    auto resumed = RunSweepShard(config, resume_options);
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    // Exactly the one lost cell is re-run; the 15 intact ones replay.
    EXPECT_EQ(resumed->cells_restored, 15);
    EXPECT_EQ(resumed->cells_run, 1);
    EXPECT_EQ(resumed->torn_tail_dropped, cut > record_start);
    EXPECT_EQ(CsvBytes(resumed->result), reference_csv);
    EXPECT_EQ(JsonBytes(resumed->result), reference_json);

    // Never double-counts: the repaired file holds each cell once.
    auto [total_cells, torn_after] = read_total_cells(path);
    EXPECT_EQ(total_cells, 16u);
    EXPECT_FALSE(torn_after) << "resume left torn bytes in the file";
  }
}

}  // namespace
}  // namespace tdg::exp
