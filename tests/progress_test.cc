// Tests for obs::ProgressTracker: disabled hooks are no-ops, the ETA is
// finite after a single completion, snapshots track counts/labels, and
// EndRun deactivates. Every test restores the global tracker state so test
// order never matters.

#include "obs/progress.h"

#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace tdg::obs {
namespace {

/// Enables the global tracker for one test and restores the previous state
/// (tests share the process-wide instance with the sweep layer).
class TrackerOnGuard {
 public:
  TrackerOnGuard() : was_enabled_(ProgressTracker::Global().enabled()) {
    ProgressTracker::Global().SetEnabled(true);
  }
  ~TrackerOnGuard() {
    ProgressTracker::Global().EndRun();
    ProgressTracker::Global().SetEnabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

TEST(ProgressTrackerTest, DisabledHooksAreNoOps) {
  ProgressTracker tracker;
  ASSERT_FALSE(tracker.enabled());
  tracker.BeginRun("ignored", 100, 0);
  tracker.RecordCell("ignored-cell", 1000);
  ProgressSnapshot snapshot = tracker.Snapshot();
  EXPECT_FALSE(snapshot.active);
  EXPECT_EQ(snapshot.cells_done, 0);
  EXPECT_EQ(snapshot.cells_total, 0);
}

TEST(ProgressTrackerTest, EtaIsUnknownBeforeAndFiniteAfterFirstCell) {
  TrackerOnGuard guard;
  ProgressTracker& tracker = ProgressTracker::Global();
  tracker.BeginRun("eta-test", 10, 0);

  ProgressSnapshot before = tracker.Snapshot();
  EXPECT_TRUE(before.active);
  EXPECT_EQ(before.cells_done, 0);
  EXPECT_LT(before.eta_seconds, 0);  // unknown until a cell lands

  tracker.RecordCell("cell-0", 500.0);
  ProgressSnapshot after = tracker.Snapshot();
  EXPECT_EQ(after.cells_done, 1);
  EXPECT_GT(after.cells_per_second, 0);
  EXPECT_GE(after.eta_seconds, 0);  // finite from the very first completion
  EXPECT_EQ(after.current_cell, "cell-0");
  EXPECT_DOUBLE_EQ(after.cell_latency_ewma_micros, 500.0);
}

TEST(ProgressTrackerTest, RestoredCellsCountTowardCompletion) {
  TrackerOnGuard guard;
  ProgressTracker& tracker = ProgressTracker::Global();
  tracker.BeginRun("resume-test", 16, /*cells_restored=*/12);

  ProgressSnapshot snapshot = tracker.Snapshot();
  EXPECT_EQ(snapshot.cells_total, 16);
  EXPECT_EQ(snapshot.cells_done, 12);
  EXPECT_EQ(snapshot.cells_restored, 12);

  tracker.RecordCell("cell-12", 100.0);
  tracker.RecordCell("cell-13", 300.0);
  snapshot = tracker.Snapshot();
  EXPECT_EQ(snapshot.cells_done, 14);
  EXPECT_EQ(snapshot.cells_restored, 12);
  // EWMA moved toward the second sample but remembers the first.
  EXPECT_GT(snapshot.cell_latency_ewma_micros, 100.0);
  EXPECT_LT(snapshot.cell_latency_ewma_micros, 300.0);
}

TEST(ProgressTrackerTest, EndRunDeactivatesAndEtaReachesZeroWhenDone) {
  TrackerOnGuard guard;
  ProgressTracker& tracker = ProgressTracker::Global();
  tracker.BeginRun("end-test", 2, 0);
  tracker.RecordCell("a", 10);
  tracker.RecordCell("b", 10);

  ProgressSnapshot done = tracker.Snapshot();
  EXPECT_EQ(done.cells_done, 2);
  EXPECT_DOUBLE_EQ(done.eta_seconds, 0.0);  // nothing remaining

  tracker.EndRun();
  EXPECT_FALSE(tracker.Snapshot().active);
}

TEST(ProgressSnapshotTest, JsonAndLineCarryTheHeadlineNumbers) {
  ProgressSnapshot snapshot;
  snapshot.active = true;
  snapshot.name = "paper-grid";
  snapshot.cells_total = 64;
  snapshot.cells_done = 12;
  snapshot.cells_per_second = 3.1;
  snapshot.eta_seconds = 17.0;
  snapshot.current_cell = "log-normal/star n=100 k=5 a=5 r=0.5/DyGroups-Star";

  util::JsonValue json = snapshot.ToJson();
  EXPECT_EQ(json.GetField("name")->AsString(), "paper-grid");
  EXPECT_EQ(static_cast<long long>(json.GetField("cells_done")->AsNumber()),
            12);
  EXPECT_EQ(
      static_cast<long long>(json.GetField("cells_total")->AsNumber()), 64);

  const std::string line = snapshot.ToLine();
  EXPECT_NE(line.find("paper-grid"), std::string::npos);
  EXPECT_NE(line.find("12/64"), std::string::npos);
  EXPECT_NE(line.find("eta 17s"), std::string::npos);
  EXPECT_NE(line.find("DyGroups-Star"), std::string::npos);
}

}  // namespace
}  // namespace tdg::obs
