#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "random/distributions.h"
#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "stats/hypothesis.h"
#include "stats/inequality.h"
#include "stats/regression.h"

namespace tdg::stats {
namespace {

// --- Descriptive ----------------------------------------------------------

TEST(DescriptiveTest, BasicMoments) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Sum(v), 15.0);
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(PopulationVariance(v), 2.0);
  EXPECT_DOUBLE_EQ(SampleVariance(v), 2.5);
  EXPECT_DOUBLE_EQ(PopulationStdDev(v), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
  EXPECT_DOUBLE_EQ(Max(v), 5.0);
}

TEST(DescriptiveTest, EmptyAndSingletonEdgeCases) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(PopulationVariance(empty), 0.0);
  std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(Mean(one), 7.0);
  EXPECT_DOUBLE_EQ(SampleVariance(one), 0.0);
  EXPECT_DOUBLE_EQ(Median(one), 7.0);
}

TEST(DescriptiveTest, MedianAndPercentiles) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Median(v), 3.0);
  std::vector<double> even = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Median(even), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(even, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(even, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(even, 0.25), 1.75);
}

TEST(DescriptiveTest, KahanSumHandlesMixedMagnitudes) {
  std::vector<double> v;
  v.push_back(1e16);
  for (int i = 0; i < 1000; ++i) v.push_back(1.0);
  v.push_back(-1e16);
  EXPECT_DOUBLE_EQ(Sum(v), 1000.0);
}

TEST(DescriptiveTest, SummarizeAggregates) {
  std::vector<double> v = {2, 4, 6};
  Summary s = Summarize(v);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 12.0);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.sample_std_dev, 2.0);
}

// --- Inequality -------------------------------------------------------------

TEST(InequalityTest, UniformPopulationHasZeroInequality) {
  std::vector<double> equal = {3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(CoefficientOfVariation(equal), 0.0);
  EXPECT_DOUBLE_EQ(GiniIndex(equal), 0.0);
}

TEST(InequalityTest, GiniMatchesPairwiseDefinition) {
  // Paper footnote 9: G = sum_{i>j} |s_i - s_j| / (n * sum_i |s_i|).
  std::vector<double> v = {1, 2, 3, 7};
  double pairwise = 0.0;
  for (size_t i = 0; i < v.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      pairwise += std::abs(v[i] - v[j]);
    }
  }
  double expected = pairwise / (v.size() * (1 + 2 + 3 + 7));
  EXPECT_NEAR(GiniIndex(v), expected, 1e-12);
}

TEST(InequalityTest, ExtremeConcentrationApproachesOne) {
  std::vector<double> v(100, 0.0);
  v[0] = 1000.0;
  // Gini of "one person owns everything" is (n-1)/n.
  EXPECT_NEAR(GiniIndex(v), 0.99, 1e-12);
}

TEST(InequalityTest, CvMatchesDirectComputation) {
  std::vector<double> v = {2, 4, 6, 8};
  EXPECT_NEAR(CoefficientOfVariation(v),
              PopulationStdDev(v) / Mean(v), 1e-12);
}

TEST(InequalityTest, ScaleInvariance) {
  std::vector<double> v = {1, 2, 5, 9};
  std::vector<double> scaled;
  for (double x : v) scaled.push_back(x * 37.0);
  EXPECT_NEAR(GiniIndex(v), GiniIndex(scaled), 1e-12);
  EXPECT_NEAR(CoefficientOfVariation(v), CoefficientOfVariation(scaled),
              1e-12);
}

// --- Regression -------------------------------------------------------------

TEST(RegressionTest, ExactLineIsRecovered) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {3, 5, 7, 9};  // y = 1 + 2x
  auto fit = FitLinear(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->Predict(10), 21.0, 1e-12);
}

TEST(RegressionTest, NoisyLineHasReasonableFit) {
  random::Rng rng(42);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double xi = static_cast<double>(i) / 10.0;
    x.push_back(xi);
    y.push_back(0.5 + 1.5 * xi + 0.1 * random::StandardNormal(rng));
  }
  auto fit = FitLinear(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 1.5, 0.02);
  EXPECT_NEAR(fit->intercept, 0.5, 0.1);
  EXPECT_GT(fit->r_squared, 0.99);
}

TEST(RegressionTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(FitLinear(std::vector<double>{1.0},
                         std::vector<double>{2.0}).ok());
  EXPECT_FALSE(FitLinear(std::vector<double>{1, 2},
                         std::vector<double>{1}).ok());
  EXPECT_FALSE(FitLinear(std::vector<double>{2, 2, 2},
                         std::vector<double>{1, 2, 3}).ok());
}

// --- Special functions / t-tests ---------------------------------------------

TEST(IncompleteBetaTest, KnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-10);
  // I_x(2, 2) = 3x^2 - 2x^3.
  double x = 0.4;
  EXPECT_NEAR(RegularizedIncompleteBeta(2, 2, x), 3 * x * x - 2 * x * x * x,
              1e-10);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(3, 4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(3, 4, 1.0), 1.0);
}

TEST(StudentTCdfTest, SymmetryAndKnownQuantiles) {
  EXPECT_NEAR(StudentTCdf(0.0, 5), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(2.0, 10) + StudentTCdf(-2.0, 10), 1.0, 1e-10);
  // t_{0.975, 10} = 2.228139 (standard table value).
  EXPECT_NEAR(StudentTCdf(2.228139, 10), 0.975, 1e-4);
  // With df = 1 (Cauchy), CDF(1) = 0.75.
  EXPECT_NEAR(StudentTCdf(1.0, 1), 0.75, 1e-8);
}

TEST(StudentTQuantileTest, InvertsCdf) {
  for (double p : {0.6, 0.75, 0.9, 0.975, 0.995}) {
    double q = StudentTQuantile(p, 7);
    EXPECT_NEAR(StudentTCdf(q, 7), p, 1e-8);
  }
  // t_{0.975, 10} = 2.228139.
  EXPECT_NEAR(StudentTQuantile(0.975, 10), 2.228139, 1e-4);
}

TEST(WelchTTestTest, DetectsLargeDifference) {
  std::vector<double> a = {5.1, 5.0, 4.9, 5.2, 5.05, 4.95};
  std::vector<double> b = {3.0, 3.1, 2.9, 3.05, 3.0, 2.95};
  auto result = WelchTTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->t_statistic, 10.0);
  EXPECT_LT(result->p_value_two_sided, 1e-6);
  EXPECT_LT(result->p_value_one_sided_greater, 1e-6);
  EXPECT_NEAR(result->mean_difference, 2.0333, 1e-3);
  EXPECT_TRUE(result->SignificantAt(0.05));
}

TEST(WelchTTestTest, NoDifferenceIsInsignificant) {
  random::Rng rng(8);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(random::StandardNormal(rng));
    b.push_back(random::StandardNormal(rng));
  }
  auto result = WelchTTest(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_value_two_sided, 0.05);
}

TEST(WelchTTestTest, RejectsTinySamples) {
  EXPECT_FALSE(WelchTTest(std::vector<double>{1.0},
                          std::vector<double>{1.0, 2.0}).ok());
  EXPECT_FALSE(WelchTTest(std::vector<double>{1, 1, 1},
                          std::vector<double>{2, 2, 2}).ok());
}

TEST(PairedTTestTest, DetectsConsistentImprovement) {
  std::vector<double> before = {0.4, 0.5, 0.45, 0.6, 0.55, 0.5};
  std::vector<double> after = {0.55, 0.62, 0.60, 0.71, 0.68, 0.66};
  auto result = PairedTTest(after, before);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->mean_difference, 0.1);
  EXPECT_LT(result->p_value_one_sided_greater, 0.01);
}

TEST(PairedTTestTest, RejectsMismatchedOrConstant) {
  EXPECT_FALSE(PairedTTest(std::vector<double>{1, 2},
                           std::vector<double>{1, 2, 3}).ok());
  EXPECT_FALSE(PairedTTest(std::vector<double>{2, 3},
                           std::vector<double>{1, 2}).ok());
}

TEST(ConfidenceIntervalTest, CoversTrueMean) {
  std::vector<double> v = {9.8, 10.1, 10.0, 9.9, 10.2, 10.0, 9.95, 10.05};
  auto ci = MeanConfidenceInterval(v, 0.95);
  ASSERT_TRUE(ci.ok());
  EXPECT_LT(ci->lower, 10.0);
  EXPECT_GT(ci->upper, 10.0);
  EXPECT_LT(ci->upper - ci->lower, 0.3);
  // Narrower at the paper's 75% level.
  auto ci75 = MeanConfidenceInterval(v, 0.75);
  ASSERT_TRUE(ci75.ok());
  EXPECT_LT(ci75->upper - ci75->lower, ci->upper - ci->lower);
}

TEST(ConfidenceIntervalTest, RejectsBadInputs) {
  std::vector<double> v = {1.0};
  EXPECT_FALSE(MeanConfidenceInterval(v, 0.9).ok());
  std::vector<double> ok = {1.0, 2.0};
  EXPECT_FALSE(MeanConfidenceInterval(ok, 0.0).ok());
  EXPECT_FALSE(MeanConfidenceInterval(ok, 1.0).ok());
}

// --- Bootstrap ---------------------------------------------------------------

TEST(BootstrapTest, MeanIntervalCoversTruth) {
  random::Rng rng(77);
  std::vector<double> data;
  for (int i = 0; i < 200; ++i) {
    data.push_back(5.0 + random::StandardNormal(rng));
  }
  random::Rng boot_rng(78);
  auto ci = BootstrapConfidenceInterval(
      data, [](std::span<const double> v) { return Mean(v); }, 0.95, 1000,
      boot_rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_LT(ci->lower, 5.0);
  EXPECT_GT(ci->upper, 5.0);
  EXPECT_LT(ci->upper - ci->lower, 0.5);
}

TEST(BootstrapTest, MeanDifferenceDetectsGap) {
  random::Rng rng(79);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(2.0 + 0.2 * random::StandardNormal(rng));
    b.push_back(1.0 + 0.2 * random::StandardNormal(rng));
  }
  random::Rng boot_rng(80);
  auto ci = BootstrapMeanDifference(a, b, 0.95, 800, boot_rng);
  ASSERT_TRUE(ci.ok());
  EXPECT_GT(ci->lower, 0.8);
  EXPECT_LT(ci->upper, 1.2);
}

TEST(BootstrapTest, RejectsBadInputs) {
  random::Rng rng(1);
  std::vector<double> empty;
  std::vector<double> ok = {1.0, 2.0};
  EXPECT_FALSE(BootstrapMeanDifference(empty, ok, 0.9, 10, rng).ok());
  EXPECT_FALSE(BootstrapMeanDifference(ok, ok, 1.5, 10, rng).ok());
  EXPECT_FALSE(BootstrapMeanDifference(ok, ok, 0.9, 0, rng).ok());
}

}  // namespace
}  // namespace tdg::stats
