#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace tdg::util {
namespace {

TEST(CsvEscapeTest, PlainFieldsUnchanged) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
  EXPECT_EQ(CsvEscape(""), "");
}

TEST(CsvEscapeTest, QuotesSpecialFields) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvSplitLineTest, SplitsPlainAndQuoted) {
  auto fields = CsvSplitLine("a,\"b,c\",d");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields.value(), (std::vector<std::string>{"a", "b,c", "d"}));
}

TEST(CsvSplitLineTest, UnescapesDoubledQuotes) {
  auto fields = CsvSplitLine("\"say \"\"hi\"\"\"");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields.value(), (std::vector<std::string>{"say \"hi\""}));
}

TEST(CsvSplitLineTest, RejectsMalformedQuotes) {
  EXPECT_FALSE(CsvSplitLine("a\"b").ok());
  EXPECT_FALSE(CsvSplitLine("\"unterminated").ok());
}

TEST(CsvDocumentTest, RoundTripsThroughText) {
  CsvDocument doc({"name", "value"});
  ASSERT_TRUE(doc.AddRow({"alpha", "1"}).ok());
  ASSERT_TRUE(doc.AddRow({"with,comma", "2"}).ok());

  auto parsed = CsvDocument::Parse(doc.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header(), doc.header());
  EXPECT_EQ(parsed->rows(), doc.rows());
}

TEST(CsvDocumentTest, RejectsWrongArity) {
  CsvDocument doc({"a", "b"});
  EXPECT_FALSE(doc.AddRow({"only-one"}).ok());
}

TEST(CsvDocumentTest, ColumnIndexAndField) {
  CsvDocument doc({"x", "y"});
  ASSERT_TRUE(doc.AddRow({"1", "2"}).ok());
  EXPECT_EQ(doc.ColumnIndex("y").value(), 1u);
  EXPECT_FALSE(doc.ColumnIndex("z").ok());
  EXPECT_EQ(doc.Field(0, 1).value(), "2");
  EXPECT_FALSE(doc.Field(1, 0).ok());
  EXPECT_FALSE(doc.Field(0, 2).ok());
}

TEST(CsvDocumentTest, ParseHandlesCrlfAndBlankLines) {
  auto parsed = CsvDocument::Parse("a,b\r\n1,2\r\n\r\n3,4\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->Field(1, 1).value(), "4");
}

TEST(CsvDocumentTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/tdg_csv_test.csv";
  CsvDocument doc({"k", "v"});
  ASSERT_TRUE(doc.AddRow({"a", "1"}).ok());
  ASSERT_TRUE(doc.WriteToFile(path).ok());
  auto loaded = CsvDocument::ReadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows(), doc.rows());
  std::remove(path.c_str());
}

TEST(CsvDocumentTest, ReadMissingFileFails) {
  EXPECT_FALSE(CsvDocument::ReadFromFile("/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace tdg::util
