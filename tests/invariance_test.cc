// Structural invariances of the model and algorithms: relabeling
// participants, scaling skills, and adding stronger members must affect
// outcomes exactly the way the theory says.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>

#include "core/dygroups.h"
#include "core/process.h"
#include "core/soa.h"
#include "random/distributions.h"

namespace tdg {
namespace {

std::vector<double> SortedDesc(std::vector<double> v) {
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

// Shared linear gain for the invariance checks (function-local static
// pointer per the style rules on non-trivial static destruction).
const LinearGain& Gain() {
  static const LinearGain* const kGain = new LinearGain(0.5);
  return *kGain;
}

// Relabeling participants permutes the final skills the same way: the
// model has no identity-dependent behavior.
TEST(InvarianceTest, ParticipantRelabelingPermutesOutcome) {
  random::Rng rng(1);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 20);
  // Make skills distinct so the permutation map is unambiguous.
  std::sort(skills.begin(), skills.end());
  for (size_t i = 1; i < skills.size(); ++i) {
    if (skills[i] <= skills[i - 1]) skills[i] = skills[i - 1] + 1e-6;
  }

  std::vector<int> perm(20);
  std::iota(perm.begin(), perm.end(), 0);
  for (int i = 19; i > 0; --i) {
    int j = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(i + 1)));
    std::swap(perm[i], perm[j]);
  }
  SkillVector permuted(20);
  for (int i = 0; i < 20; ++i) permuted[perm[i]] = skills[i];

  for (InteractionMode mode :
       {InteractionMode::kStar, InteractionMode::kClique}) {
    auto policy_a = MakeDyGroupsPolicy(mode);
    auto policy_b = MakeDyGroupsPolicy(mode);
    ProcessConfig config;
    config.num_groups = 4;
    config.num_rounds = 3;
    config.mode = mode;
    auto original = RunProcess(skills, config, Gain(), *policy_a);
    auto relabeled = RunProcess(permuted, config, Gain(), *policy_b);
    ASSERT_TRUE(original.ok() && relabeled.ok());
    for (int i = 0; i < 20; ++i) {
      EXPECT_NEAR(relabeled->final_skills[perm[i]],
                  original->final_skills[i], 1e-12)
          << InteractionModeName(mode);
    }
    EXPECT_NEAR(original->total_gain, relabeled->total_gain, 1e-9);
  }
}

// Linear gain is positively homogeneous: scaling all skills by c scales
// every gain and final skill by c.
TEST(InvarianceTest, SkillScalingScalesOutcome) {
  random::Rng rng(2);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kUniform, 12);
  for (double& s : skills) s += 0.01;
  SkillVector scaled = skills;
  constexpr double kScale = 37.5;
  for (double& s : scaled) s *= kScale;

  DyGroupsStarPolicy policy_a;
  DyGroupsStarPolicy policy_b;
  ProcessConfig config;
  config.num_groups = 3;
  config.num_rounds = 4;
  auto original = RunProcess(skills, config, Gain(), policy_a);
  auto scaled_result = RunProcess(scaled, config, Gain(), policy_b);
  ASSERT_TRUE(original.ok() && scaled_result.ok());
  EXPECT_NEAR(scaled_result->total_gain, kScale * original->total_gain,
              1e-7 * kScale);
  for (size_t i = 0; i < skills.size(); ++i) {
    EXPECT_NEAR(scaled_result->final_skills[i],
                kScale * original->final_skills[i], 1e-9 * kScale);
  }
}

// Shifting all skills by a constant leaves gains invariant (only
// differences matter).
TEST(InvarianceTest, SkillShiftLeavesGainInvariant) {
  random::Rng rng(3);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kUniform, 12);
  for (double& s : skills) s += 0.01;
  SkillVector shifted = skills;
  for (double& s : shifted) s += 100.0;

  DyGroupsCliquePolicy policy_a;
  DyGroupsCliquePolicy policy_b;
  ProcessConfig config;
  config.num_groups = 2;
  config.num_rounds = 3;
  config.mode = InteractionMode::kClique;
  auto original = RunProcess(skills, config, Gain(), policy_a);
  auto shifted_result =
      RunProcess(shifted, config, Gain(), policy_b);
  ASSERT_TRUE(original.ok() && shifted_result.ok());
  EXPECT_NEAR(original->total_gain, shifted_result->total_gain, 1e-7);
}

// Raising the top participant's skill can only raise the round-optimal
// star gain (more to learn from the best teacher).
TEST(InvarianceTest, StrongerTopTeacherNeverHurtsRoundGain) {
  random::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    SkillVector skills =
        random::GenerateSkills(rng, random::SkillDistribution::kUniform, 12);
    for (double& s : skills) s += 0.01;
    int top = static_cast<int>(
        std::max_element(skills.begin(), skills.end()) - skills.begin());

    auto base_grouping = DyGroupsStarLocal(skills, 3);
    ASSERT_TRUE(base_grouping.ok());
    double base = EvaluateRoundGain(InteractionMode::kStar,
                                    base_grouping.value(), Gain(),
                                    skills)
                      .value();

    SkillVector boosted = skills;
    boosted[top] += 1.0;
    auto boosted_grouping = DyGroupsStarLocal(boosted, 3);
    ASSERT_TRUE(boosted_grouping.ok());
    double after = EvaluateRoundGain(InteractionMode::kStar,
                                     boosted_grouping.value(),
                                     Gain(), boosted)
                       .value();
    EXPECT_GE(after, base - 1e-12);
  }
}

// The final skill multiset is independent of the input order for DyGroups
// (sorting-based policies) — a weaker but broadly useful relabeling check.
TEST(InvarianceTest, FinalSkillMultisetOrderIndependent) {
  random::Rng rng(5);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kZipf, 18);
  SkillVector reversed(skills.rbegin(), skills.rend());

  DyGroupsStarPolicy policy_a;
  DyGroupsStarPolicy policy_b;
  ProcessConfig config;
  config.num_groups = 3;
  config.num_rounds = 5;
  auto a = RunProcess(skills, config, Gain(), policy_a);
  auto b = RunProcess(reversed, config, Gain(), policy_b);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<double> sa = SortedDesc(a->final_skills);
  std::vector<double> sb = SortedDesc(b->final_skills);
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_NEAR(sa[i], sb[i], 1e-9);
  }
}

// The whole invariance battery is about *outcomes*; the SoA plane promises
// the outcomes are additionally invariant to which execution path produced
// them. Run one representative process four ways — SIMD on/off × fused
// (history off) / generic (history on) — and require bitwise agreement.
TEST(InvarianceTest, ExecutionPathInvariance) {
  random::Rng rng(6);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 24);
  for (double& s : skills) s += 0.01;

  for (InteractionMode mode :
       {InteractionMode::kStar, InteractionMode::kClique}) {
    SkillVector baseline;
    for (bool simd : {true, false}) {
      for (bool history : {false, true}) {
        soa::SetSimdEnabledForTest(simd);
        auto policy = MakeDyGroupsPolicy(mode);
        ProcessConfig config;
        config.num_groups = 4;
        config.num_rounds = 4;
        config.mode = mode;
        config.record_history = history;
        auto result = RunProcess(skills, config, Gain(), *policy);
        soa::SetSimdEnabledForTest(true);
        ASSERT_TRUE(result.ok());
        if (baseline.empty()) {
          baseline = result->final_skills;
          continue;
        }
        ASSERT_EQ(result->final_skills.size(), baseline.size());
        for (size_t i = 0; i < baseline.size(); ++i) {
          EXPECT_EQ(std::bit_cast<uint64_t>(result->final_skills[i]),
                    std::bit_cast<uint64_t>(baseline[i]))
              << InteractionModeName(mode) << " simd=" << simd
              << " history=" << history << " participant " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace tdg
