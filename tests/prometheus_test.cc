// Tests for the Prometheus text exposition renderer: metric-name folding,
// label escaping, cumulative bucket rendering, and a golden file pinning
// the full exposition of a hand-built snapshot.
//
// Regenerate the golden after an intentional format change with:
//   TDG_UPDATE_GOLDEN=1 ./build/tests/tdg_tests \
//       --gtest_filter=PrometheusGoldenTest.*

#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"

namespace tdg::obs {
namespace {

TEST(PrometheusTest, MetricNameFoldsInvalidCharactersAndPrefixes) {
  EXPECT_EQ(PrometheusMetricName("sweep/cells_completed"),
            "tdg_sweep_cells_completed");
  EXPECT_EQ(PrometheusMetricName("thread_pool/task_micros"),
            "tdg_thread_pool_task_micros");
  EXPECT_EQ(PrometheusMetricName("a b.c-d"), "tdg_a_b_c_d");
  // Already-valid characters (including colons) survive.
  EXPECT_EQ(PrometheusMetricName("ns:name_1"), "tdg_ns:name_1");
}

TEST(PrometheusTest, LabelEscapingCoversBackslashQuoteNewline) {
  EXPECT_EQ(PrometheusEscapeLabel("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusEscapeLabel("line\nbreak"), "line\\nbreak");
}

TEST(PrometheusTest, CountersRenderWithTotalSuffix) {
  MetricsSnapshot snapshot;
  snapshot.counters["sweep/cells_completed"] = 16;
  const std::string text = RenderPrometheusText(snapshot);
  EXPECT_NE(text.find("# TYPE tdg_sweep_cells_completed_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("tdg_sweep_cells_completed_total 16\n"),
            std::string::npos);
}

TEST(PrometheusTest, HistogramRendersCumulativeBucketsSumAndCount) {
  MetricsSnapshot snapshot;
  HistogramStats stats;
  stats.count = 7;
  stats.sum = 350;
  stats.buckets = {{10.0, 3}, {100.0, 6}};
  snapshot.histograms["sweep/process_micros"] = stats;

  const std::string text = RenderPrometheusText(snapshot);
  const std::string family = "tdg_sweep_process_micros";
  EXPECT_NE(text.find("# TYPE " + family + " histogram\n"),
            std::string::npos);
  // Cumulative, ascending, capped by the +Inf bucket == count.
  const size_t b10 = text.find(family + "_bucket{le=\"10\"} 3\n");
  const size_t b100 = text.find(family + "_bucket{le=\"100\"} 6\n");
  const size_t binf = text.find(family + "_bucket{le=\"+Inf\"} 7\n");
  EXPECT_NE(b10, std::string::npos);
  EXPECT_NE(b100, std::string::npos);
  EXPECT_NE(binf, std::string::npos);
  EXPECT_LT(b10, b100);
  EXPECT_LT(b100, binf);
  EXPECT_NE(text.find(family + "_sum 350\n"), std::string::npos);
  EXPECT_NE(text.find(family + "_count 7\n"), std::string::npos);
}

TEST(PrometheusTest, PerfCountersRenderAsLabeledFamilies) {
  MetricsSnapshot snapshot;
  snapshot.counters["perf/core/skills/sort/cycles"] = 100;
  snapshot.counters["perf/core/objective/swap_delta/cycles"] = 50;
  snapshot.counters["perf/core/skills/sort/calls"] = 7;
  snapshot.counters["perf/odd"] = 3;  // no domain/event split: stays plain
  snapshot.counters["sweep/cells_completed"] = 1;
  const std::string text = RenderPrometheusText(snapshot);

  // One family per event, every domain a labeled sample under it.
  const std::string header = "# TYPE tdg_perf_cycles_total counter\n";
  const size_t first = text.find(header);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(header, first + 1), std::string::npos);
  EXPECT_NE(
      text.find(
          "tdg_perf_cycles_total{domain=\"core/objective/swap_delta\"} 50\n"),
      std::string::npos);
  EXPECT_NE(text.find("tdg_perf_cycles_total{domain=\"core/skills/sort\"}"
                      " 100\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("tdg_perf_calls_total{domain=\"core/skills/sort\"} 7\n"),
      std::string::npos);
  // Names that don't parse as perf/<domain>/<event> keep plain rendering.
  EXPECT_NE(text.find("tdg_perf_odd_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("tdg_sweep_cells_completed_total 1\n"),
            std::string::npos);
}

TEST(PrometheusTest, PerfDomainLabelsAreEscaped) {
  MetricsSnapshot snapshot;
  snapshot.counters["perf/we\"ird\\dom/cycles"] = 9;
  const std::string text = RenderPrometheusText(snapshot);
  EXPECT_NE(
      text.find("tdg_perf_cycles_total{domain=\"we\\\"ird\\\\dom\"} 9\n"),
      std::string::npos);
}

TEST(PrometheusTest, BuildInfoRendersAsConstantGaugeWithLabels) {
  MetricsSnapshot snapshot;
  snapshot.build_info = {{"git_sha", "abc123"}, {"build type", "Release"}};
  const std::string text = RenderPrometheusText(snapshot);
  // Label keys are folded like metric names; values are escaped verbatim.
  EXPECT_NE(text.find(
                "tdg_build_info{build_type=\"Release\",git_sha=\"abc123\"}"
                " 1\n"),
            std::string::npos);
}

TEST(PrometheusTest, RegistrySnapshotBucketsMatchRecordedSamples) {
  // End-to-end through a real histogram: the snapshot's cumulative buckets
  // must cover every sample, and the renderer must agree with Count().
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("prometheus_test/histogram");
  histogram.Reset();
  for (double v : {1.0, 5.0, 50.0, 50.0, 5000.0}) histogram.Record(v);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const HistogramStats& stats =
      snapshot.histograms.at("prometheus_test/histogram");
  ASSERT_FALSE(stats.buckets.empty());
  EXPECT_EQ(stats.buckets.back().cumulative_count, 5);
  for (size_t i = 1; i < stats.buckets.size(); ++i) {
    EXPECT_GT(stats.buckets[i].upper_bound, stats.buckets[i - 1].upper_bound);
    EXPECT_GE(stats.buckets[i].cumulative_count,
              stats.buckets[i - 1].cumulative_count);
  }
  const std::string text = RenderPrometheusText(snapshot);
  EXPECT_NE(
      text.find("tdg_prometheus_test_histogram_bucket{le=\"+Inf\"} 5\n"),
      std::string::npos);
  histogram.Reset();
}

TEST(PrometheusTest, CommonLabelsAttachToEverySample) {
  // shard_index/shard_count — the sweep-shard labels — must reach every
  // family kind: counters, gauges, histogram series, perf families, and
  // build_info.
  MetricsSnapshot snapshot;
  snapshot.common_labels = {{"shard_index", "2"}, {"shard_count", "4"}};
  snapshot.build_info = {{"git_sha", "abc123"}};
  snapshot.counters["sweep/cells_completed"] = 16;
  snapshot.counters["perf/core/skills/sort/cycles"] = 100;
  snapshot.gauges["thread_pool/queue_depth"] = {2.0, 8.0};
  HistogramStats stats;
  stats.count = 2;
  stats.sum = 30;
  stats.buckets = {{10.0, 1}};
  snapshot.histograms["sweep/process_micros"] = stats;

  const std::string text = RenderPrometheusText(snapshot);
  const std::string labels = "{shard_count=\"4\",shard_index=\"2\"}";
  EXPECT_NE(text.find("tdg_sweep_cells_completed_total" + labels + " 16\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tdg_thread_pool_queue_depth" + labels + " 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tdg_thread_pool_queue_depth_max" + labels + " 8\n"),
            std::string::npos);
  // Per-sample labels merge with (and sort among) the common ones.
  EXPECT_NE(
      text.find("tdg_sweep_process_micros_bucket{le=\"10\","
                "shard_count=\"4\",shard_index=\"2\"} 1\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("tdg_sweep_process_micros_sum" + labels + " 30\n"),
            std::string::npos);
  EXPECT_NE(text.find("tdg_sweep_process_micros_count" + labels + " 2\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("tdg_perf_cycles_total{domain=\"core/skills/sort\","
                "shard_count=\"4\",shard_index=\"2\"} 100\n"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("tdg_build_info{git_sha=\"abc123\",shard_count=\"4\","
                "shard_index=\"2\"} 1\n"),
      std::string::npos)
      << text;
}

TEST(PrometheusTest, PerSampleLabelWinsOverCommonLabelCollision) {
  MetricsSnapshot snapshot;
  snapshot.common_labels = {{"domain", "from-common"}};
  snapshot.counters["perf/core/skills/sort/cycles"] = 5;
  const std::string text = RenderPrometheusText(snapshot);
  EXPECT_NE(
      text.find("tdg_perf_cycles_total{domain=\"core/skills/sort\"} 5\n"),
      std::string::npos)
      << text;
  EXPECT_EQ(text.find("from-common"), std::string::npos);
}

TEST(PrometheusTest, RegistryCommonLabelsFlowIntoSnapshot) {
  MetricsRegistry::Global().SetCommonLabels(
      {{"shard_index", "1"}, {"shard_count", "2"}});
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.common_labels.at("shard_index"), "1");
  EXPECT_EQ(snapshot.common_labels.at("shard_count"), "2");
  MetricsRegistry::Global().SetCommonLabels({});
  EXPECT_TRUE(
      MetricsRegistry::Global().Snapshot().common_labels.empty());
}

std::string GoldenPath() {
  return std::string(TDG_TESTS_GOLDEN_DIR) + "/metrics.prom";
}

TEST(PrometheusGoldenTest, ExpositionMatchesGolden) {
  // Hand-built snapshot: fully deterministic, covers every family kind —
  // including the shard identity common labels every sample carries.
  MetricsSnapshot snapshot;
  snapshot.common_labels = {{"shard_index", "3"}, {"shard_count", "8"}};
  snapshot.build_info = {{"git_sha", "deadbeef"},
                         {"compiler", "GNU 12.0"},
                         {"build_type", "Release"}};
  snapshot.counters["sweep/cells_completed"] = 16;
  snapshot.counters["work_steal_queue/steals"] = 3;
  // Kernel-profiling counters: one labeled family per event, domains as
  // labels, including a domain exercising every label escape.
  snapshot.counters["perf/core/skills/sort/calls"] = 2240;
  snapshot.counters["perf/core/skills/sort/cycles"] = 41250000;
  snapshot.counters["perf/core/theory/clique_prefix/cycles"] = 9500000;
  snapshot.counters["perf/core/theory/clique_prefix/instructions"] =
      31000000;
  snapshot.counters["perf/we\"ird\\dom\nain/cycles"] = 7;
  snapshot.gauges["thread_pool/queue_depth"] = {2.0, 8.0};
  snapshot.gauges["process/peak_rss_bytes"] = {73728000.0, 73728000.0};
  HistogramStats histogram;
  histogram.count = 4;
  histogram.sum = 1234.5;
  histogram.min = 10;
  histogram.max = 1000;
  histogram.mean = 308.625;
  histogram.buckets = {{17.782794100389228, 1},
                       {177.82794100389228, 2},
                       {1000.0000000000002, 4}};
  snapshot.histograms["sweep/process_micros"] = histogram;

  const std::string rendered = RenderPrometheusText(snapshot);
  const std::string path = GoldenPath();

  if (std::getenv("TDG_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "cannot open golden file " << path
                         << " (regenerate with TDG_UPDATE_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(rendered, golden.str())
      << "Prometheus exposition drifted from tests/golden/metrics.prom; "
         "if the format change is intentional, regenerate with "
         "TDG_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace tdg::obs
