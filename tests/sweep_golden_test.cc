// Golden-file test for the sweep exporters: a small fixed sweep's CSV and
// JSON exports must be byte-identical to the checked-in files under
// tests/golden/, and byte-identical across worker thread counts 1, 2 and 8
// (the sweep determinism contract: cell RNG streams derive from the grid
// position, never from scheduling).
//
// mean_micros is the one timing-dependent column; the test disables the
// tdg::obs metrics registry so it is deterministically 0 (the documented
// behavior of SweepCell::mean_micros).
//
// To regenerate after an intentional output change:
//   TDG_UPDATE_GOLDEN=1 ./build/tests/tdg_tests \
//       --gtest_filter='SweepGoldenTest.*'
// and commit the rewritten files.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/sweep.h"
#include "obs/obs.h"

#ifndef TDG_TESTS_GOLDEN_DIR
#error "TDG_TESTS_GOLDEN_DIR must be defined by tests/CMakeLists.txt"
#endif

namespace tdg {
namespace {

class MetricsOffGuard {
 public:
  MetricsOffGuard() : was_enabled_(obs::MetricsEnabled()) {
    obs::SetMetricsEnabled(false);
  }
  ~MetricsOffGuard() { obs::SetMetricsEnabled(was_enabled_); }

 private:
  bool was_enabled_;
};

exp::SweepConfig GoldenConfig() {
  exp::SweepConfig config;
  config.name = "golden";
  config.policies = {"DyGroups-Star", "Random-Assignment"};
  config.n_values = {12, 24};
  config.k_values = {3};
  config.alpha_values = {2};
  config.r_values = {0.25, 0.5};
  config.modes = {InteractionMode::kStar, InteractionMode::kClique};
  config.distributions = {random::SkillDistribution::kLogNormal};
  config.runs = 2;
  config.seed = 7;
  return config;
}

std::string GoldenPath(const std::string& file) {
  return std::string(TDG_TESTS_GOLDEN_DIR) + "/" + file;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open golden file " << path
                         << " (regenerate with TDG_UPDATE_GOLDEN=1)";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good()) << "cannot write golden file " << path;
  out << content;
}

TEST(SweepGoldenTest, CsvAndJsonMatchGoldenAcrossThreadCounts) {
  MetricsOffGuard metrics_off;
  std::string csv[3], json[3];
  const int thread_counts[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    exp::SweepConfig config = GoldenConfig();
    config.threads = thread_counts[i];
    auto result = exp::RunSweep(config);
    ASSERT_TRUE(result.ok()) << result.status();
    csv[i] = result->ToCsv().ToString();
    json[i] = result->ToJson().SerializePretty() + "\n";
  }
  // Determinism across worker counts, byte for byte.
  EXPECT_EQ(csv[0], csv[1]);
  EXPECT_EQ(csv[0], csv[2]);
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(json[0], json[2]);

  if (std::getenv("TDG_UPDATE_GOLDEN") != nullptr) {
    WriteFile(GoldenPath("sweep_small.csv"), csv[0]);
    WriteFile(GoldenPath("sweep_small.json"), json[0]);
    GTEST_SKIP() << "regenerated golden files under " << TDG_TESTS_GOLDEN_DIR;
  }
  // Stability against the checked-in goldens.
  EXPECT_EQ(csv[0], ReadFile(GoldenPath("sweep_small.csv")));
  EXPECT_EQ(json[0], ReadFile(GoldenPath("sweep_small.json")));
}

}  // namespace
}  // namespace tdg
