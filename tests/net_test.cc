// Tests for util::net, the blocking-socket layer under the embedded stats
// server: ephemeral binds, accept-loop timeout semantics, loopback
// round-trips, and the HTTP helper parsing.

#include "util/net.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

namespace tdg::util::net {
namespace {

TEST(NetTest, ListenOnPortZeroBindsAnEphemeralPort) {
  auto server = ServerSocket::Listen(0);
  ASSERT_TRUE(server.ok()) << server.status();
  EXPECT_TRUE(server->is_open());
  EXPECT_GT(server->port(), 0);

  // A second ephemeral listener coexists on a distinct port.
  auto second = ServerSocket::Listen(0);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_NE(server->port(), second->port());
}

TEST(NetTest, AcceptTimeoutReturnsClosedSocketNotError) {
  auto server = ServerSocket::Listen(0);
  ASSERT_TRUE(server.ok()) << server.status();
  auto connection = server->AcceptWithTimeout(/*timeout_ms=*/20);
  ASSERT_TRUE(connection.ok()) << connection.status();
  EXPECT_FALSE(connection->is_open());
}

TEST(NetTest, LoopbackRoundTripDeliversBytesBothWays) {
  auto server = ServerSocket::Listen(0);
  ASSERT_TRUE(server.ok()) << server.status();

  std::thread peer([port = server->port()] {
    auto client = ConnectLoopback(port);
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE(client->WriteAll("ping\r\n").ok());
    auto reply = client->ReadUntil("\n", 1024, /*timeout_ms=*/5000);
    ASSERT_TRUE(reply.ok()) << reply.status();
    EXPECT_EQ(reply.value(), "pong\n");
  });

  auto connection = server->AcceptWithTimeout(/*timeout_ms=*/5000);
  ASSERT_TRUE(connection.ok()) << connection.status();
  ASSERT_TRUE(connection->is_open());
  auto request = connection->ReadUntil("\r\n", 1024, /*timeout_ms=*/5000);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request.value(), "ping\r\n");
  EXPECT_TRUE(connection->WriteAll("pong\n").ok());
  peer.join();
}

TEST(NetTest, ReadUntilEnforcesMaxBytes) {
  auto server = ServerSocket::Listen(0);
  ASSERT_TRUE(server.ok()) << server.status();

  std::thread peer([port = server->port()] {
    auto client = ConnectLoopback(port);
    ASSERT_TRUE(client.ok()) << client.status();
    // No delimiter anywhere: the reader must stop at its byte budget.
    (void)client->WriteAll(std::string(256, 'x'));
  });

  auto connection = server->AcceptWithTimeout(/*timeout_ms=*/5000);
  ASSERT_TRUE(connection.ok()) << connection.status();
  ASSERT_TRUE(connection->is_open());
  auto request =
      connection->ReadUntil("\r\n\r\n", /*max_bytes=*/64, /*timeout_ms=*/5000);
  EXPECT_FALSE(request.ok());
  peer.join();
}

TEST(NetTest, ConnectToUnboundPortFails) {
  // Grab an ephemeral port, then close the listener so nothing is there.
  int dead_port = 0;
  {
    auto server = ServerSocket::Listen(0);
    ASSERT_TRUE(server.ok()) << server.status();
    dead_port = server->port();
  }
  auto client = ConnectLoopback(dead_port, /*timeout_ms=*/500);
  EXPECT_FALSE(client.ok());
}

TEST(NetTest, ReadUntilTimeoutIsATotalDeadlineNotAProgressWindow) {
  auto server = ServerSocket::Listen(0);
  ASSERT_TRUE(server.ok()) << server.status();

  // A dribbling client: one byte at a time, each within the old per-chunk
  // window, never sending the delimiter. Under progress-window semantics
  // this held the socket open forever (each byte reset the clock); under
  // total-deadline semantics the read fails once ~250 ms have elapsed,
  // regardless of how often bytes keep arriving.
  std::thread peer([port = server->port()] {
    auto client = ConnectLoopback(port);
    ASSERT_TRUE(client.ok()) << client.status();
    for (int i = 0; i < 20; ++i) {
      if (!client->WriteAll("x").ok()) break;  // reader gave up — done
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  auto connection = server->AcceptWithTimeout(/*timeout_ms=*/5000);
  ASSERT_TRUE(connection.ok()) << connection.status();
  ASSERT_TRUE(connection->is_open());
  const auto begin = std::chrono::steady_clock::now();
  auto request =
      connection->ReadUntil("\r\n\r\n", 1 << 20, /*timeout_ms=*/250);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);
  EXPECT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kFailedPrecondition)
      << request.status();
  // Well under the 1000 ms the dribbler would sustain with per-chunk
  // resets; generous upper bound for loaded CI machines.
  EXPECT_LT(elapsed.count(), 900);
  connection->Close();  // unblock the dribbler's next write
  peer.join();
}

TEST(NetTest, HttpBodySplitsHeadersFromPayload) {
  auto body = HttpBody(
      "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\nhello\n");
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(body.value(), "hello\n");

  EXPECT_FALSE(HttpBody("no separator here").ok());
}

}  // namespace
}  // namespace tdg::util::net
