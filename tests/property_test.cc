// Parameterized invariant sweeps across interaction modes, skill
// distributions, population shapes and learning rates.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "baselines/registry.h"
#include "core/dygroups.h"
#include "core/process.h"
#include "random/distributions.h"

namespace tdg {
namespace {

struct PropertyCase {
  InteractionMode mode;
  random::SkillDistribution distribution;
  int n;
  int k;
  double r;

  std::string Name() const {
    std::string name(InteractionModeName(mode));
    name += "_";
    name += random::SkillDistributionName(distribution);
    name += "_n" + std::to_string(n) + "_k" + std::to_string(k) + "_r" +
            std::to_string(static_cast<int>(r * 100));
    std::replace(name.begin(), name.end(), '-', '_');
    return name;
  }
};

class ProcessPropertyTest : public testing::TestWithParam<PropertyCase> {
 protected:
  SkillVector MakeSkills(uint64_t seed) const {
    random::Rng rng(seed);
    SkillVector skills = random::GenerateSkills(
        rng, GetParam().distribution, GetParam().n);
    for (double& s : skills) s += 1e-6;  // uniform can draw exact zero
    return skills;
  }

  ProcessConfig MakeConfig() const {
    ProcessConfig config;
    config.num_groups = GetParam().k;
    config.num_rounds = 5;
    config.mode = GetParam().mode;
    return config;
  }
};

TEST_P(ProcessPropertyTest, HistoryGroupingsAreValidPartitions) {
  SkillVector skills = MakeSkills(1);
  LinearGain gain(GetParam().r);
  auto policy = MakeDyGroupsPolicy(GetParam().mode);
  auto result = RunProcess(skills, MakeConfig(), gain, *policy);
  ASSERT_TRUE(result.ok());
  for (const RoundRecord& record : result->history) {
    EXPECT_TRUE(record.grouping.ValidateEquiSized(GetParam().n).ok());
  }
}

TEST_P(ProcessPropertyTest, MaxSkillIsInvariantAndSkillsMonotone) {
  SkillVector skills = MakeSkills(2);
  LinearGain gain(GetParam().r);
  auto policy = MakeDyGroupsPolicy(GetParam().mode);
  auto result = RunProcess(skills, MakeConfig(), gain, *policy);
  ASSERT_TRUE(result.ok());
  double initial_max = *std::max_element(skills.begin(), skills.end());
  const SkillVector* previous = &result->initial_skills;
  for (const RoundRecord& record : result->history) {
    double round_max = *std::max_element(record.skills_after.begin(),
                                         record.skills_after.end());
    EXPECT_NEAR(round_max, initial_max, 1e-9);
    for (int i = 0; i < GetParam().n; ++i) {
      EXPECT_GE(record.skills_after[i], (*previous)[i] - 1e-12);
      EXPECT_LE(record.skills_after[i], initial_max + 1e-9);
    }
    previous = &record.skills_after;
  }
}

TEST_P(ProcessPropertyTest, TotalGainMatchesSkillMassDelta) {
  SkillVector skills = MakeSkills(3);
  LinearGain gain(GetParam().r);
  auto policy = MakeDyGroupsPolicy(GetParam().mode);
  auto result = RunProcess(skills, MakeConfig(), gain, *policy);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_gain,
              TotalSkill(result->final_skills) - TotalSkill(skills),
              1e-6 * std::max(1.0, TotalSkill(skills)));
  for (double g : result->round_gains) {
    EXPECT_GE(g, -1e-12);
  }
}

// Theorems 1 & 4 in sweep form: no baseline's round-1 grouping beats the
// matching DyGroups-Local grouping in its own interaction mode.
TEST_P(ProcessPropertyTest, DyGroupsLocalIsRoundOptimalAmongBaselines) {
  SkillVector skills = MakeSkills(4);
  LinearGain gain(GetParam().r);
  auto dygroups = MakeDyGroupsPolicy(GetParam().mode);
  auto dy_grouping = dygroups->FormGroups(skills, GetParam().k);
  ASSERT_TRUE(dy_grouping.ok());
  double dy_gain = EvaluateRoundGain(GetParam().mode, dy_grouping.value(),
                                     gain, skills)
                       .value();
  for (const std::string& name : baselines::AllPolicyNames()) {
    auto policy = baselines::MakePolicy(name, 11);
    ASSERT_TRUE(policy.ok());
    auto grouping = (*policy)->FormGroups(skills, GetParam().k);
    ASSERT_TRUE(grouping.ok()) << name;
    double lg = EvaluateRoundGain(GetParam().mode, grouping.value(), gain,
                                  skills)
                    .value();
    EXPECT_LE(lg, dy_gain + 1e-9) << name;
  }
}

TEST_P(ProcessPropertyTest, DyGroupsBeatsRandomAssignmentOverProcess) {
  SkillVector skills = MakeSkills(5);
  LinearGain gain(GetParam().r);
  auto dygroups = MakeDyGroupsPolicy(GetParam().mode);
  auto dy_result = RunProcess(skills, MakeConfig(), gain, *dygroups);
  ASSERT_TRUE(dy_result.ok());

  // Average random assignment over a few seeds for stability.
  double random_total = 0.0;
  constexpr int kRuns = 3;
  for (uint64_t seed = 0; seed < kRuns; ++seed) {
    auto random_policy = baselines::MakePolicy("Random-Assignment", seed);
    ASSERT_TRUE(random_policy.ok());
    auto result = RunProcess(skills, MakeConfig(), gain, **random_policy);
    ASSERT_TRUE(result.ok());
    random_total += result->total_gain;
  }
  EXPECT_GE(dy_result->total_gain, random_total / kRuns - 1e-9);
}

TEST_P(ProcessPropertyTest, DeterministicGivenSameInputs) {
  SkillVector skills = MakeSkills(6);
  LinearGain gain(GetParam().r);
  auto policy_a = MakeDyGroupsPolicy(GetParam().mode);
  auto policy_b = MakeDyGroupsPolicy(GetParam().mode);
  auto a = RunProcess(skills, MakeConfig(), gain, *policy_a);
  auto b = RunProcess(skills, MakeConfig(), gain, *policy_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->final_skills, b->final_skills);
  EXPECT_DOUBLE_EQ(a->total_gain, b->total_gain);
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (InteractionMode mode :
       {InteractionMode::kStar, InteractionMode::kClique}) {
    for (random::SkillDistribution distribution :
         {random::SkillDistribution::kLogNormal,
          random::SkillDistribution::kZipf,
          random::SkillDistribution::kUniform}) {
      for (auto [n, k] : {std::pair{60, 5}, std::pair{40, 2},
                          std::pair{24, 12}}) {
        for (double r : {0.1, 0.5, 0.9}) {
          cases.push_back(PropertyCase{mode, distribution, n, k, r});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProcessPropertyTest, testing::ValuesIn(MakeCases()),
    [](const testing::TestParamInfo<PropertyCase>& info) {
      return info.param.Name();
    });

}  // namespace
}  // namespace tdg
