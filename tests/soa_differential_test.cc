// Differential test oracle for the SoA data plane (DESIGN.md §11).
//
// Every hot kernel of core/soa.h is driven head-to-head against the retained
// AoS reference implementations (core/reference/reference_kernels.h) over
// hundreds of randomized instances — heavy-tailed and degenerate skill
// distributions, tie-saturated vectors, n from 2 to 10^4, every k shape —
// asserting *bitwise* identical groupings, gains, and skill updates. The
// whole suite runs twice: once with the SIMD paths enabled and once forced
// scalar, which simultaneously proves scalar/SIMD parity (soa.h rule 1) and
// reduction-order stability (rule 2). The documented tolerance is 0 ULP; a
// change that needs more must update soa.h, DESIGN.md §11, and this file
// together.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dygroups.h"
#include "core/interaction.h"
#include "core/learning_gain.h"
#include "core/objective.h"
#include "core/process.h"
#include "core/reference/reference_kernels.h"
#include "core/skills.h"
#include "core/soa.h"
#include "random/distributions.h"

namespace tdg {
namespace {

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

#define EXPECT_BITEQ(a, b) EXPECT_EQ(Bits(a), Bits(b))
#define ASSERT_BITEQ(a, b) ASSERT_EQ(Bits(a), Bits(b))

void ExpectBitwiseEqual(const std::vector<double>& a,
                        const std::vector<double>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(Bits(a[i]), Bits(b[i]))
        << what << " diverges at index " << i << ": " << a[i] << " vs "
        << b[i];
  }
}

// --- Instance generation --------------------------------------------------

enum class Dist {
  kUniform,    // uniform [0.5, 100)
  kLogNormal,  // paper §V-B1 parameters: mu = e, sigma = sqrt(e)
  kZipf,       // bounded Zipf(2.3, 10) — integer skills, many exact ties
  kTies,       // uniform over {1, 2, 3} — tie-saturated
  kConstant,   // all members identical (fully degenerate)
  kWideRange,  // magnitudes spanning 1e-6 .. 1e8
};

constexpr Dist kAllDists[] = {Dist::kUniform, Dist::kLogNormal, Dist::kZipf,
                              Dist::kTies,    Dist::kConstant,
                              Dist::kWideRange};

SkillVector GenSkills(random::Rng& rng, int n, Dist dist) {
  SkillVector skills(n);
  const random::BoundedZipf zipf(2.3, 10);
  for (int i = 0; i < n; ++i) {
    switch (dist) {
      case Dist::kUniform:
        skills[i] = random::UniformReal(rng, 0.5, 100.0);
        break;
      case Dist::kLogNormal:
        skills[i] = random::LogNormal(rng, std::exp(1.0),
                                      std::sqrt(std::exp(1.0)));
        break;
      case Dist::kZipf:
        skills[i] = static_cast<double>(zipf.Sample(rng));
        break;
      case Dist::kTies:
        skills[i] = std::floor(random::UniformReal(rng, 1.0, 4.0));
        break;
      case Dist::kConstant:
        skills[i] = 7.25;
        break;
      case Dist::kWideRange:
        skills[i] = std::pow(10.0, random::UniformReal(rng, -6.0, 8.0));
        break;
    }
  }
  return skills;
}

// A divisor of n, biased across the k = 1 / k = n / middle shapes.
int PickNumGroups(random::Rng& rng, int n) {
  std::vector<int> divisors;
  for (int k = 1; k <= n; ++k) {
    if (n % k == 0) divisors.push_back(k);
  }
  return divisors[rng() % divisors.size()];
}

// Random equi-sized partition (shuffled ids dealt into n/k blocks).
Grouping RandomGrouping(random::Rng& rng, int n, int num_groups) {
  std::vector<int> ids(n);
  for (int i = 0; i < n; ++i) ids[i] = i;
  for (int i = n - 1; i > 0; --i) {
    std::swap(ids[i], ids[rng() % (i + 1)]);
  }
  Grouping grouping;
  grouping.groups.resize(num_groups);
  int group_size = n / num_groups;
  for (int g = 0; g < num_groups; ++g) {
    grouping.groups[g].assign(ids.begin() + g * group_size,
                              ids.begin() + (g + 1) * group_size);
  }
  return grouping;
}

const LearningGainFunction& PickGain(random::Rng& rng,
                                     std::vector<std::unique_ptr<
                                         LearningGainFunction>>& storage) {
  double r = random::UniformReal(rng, 0.05, 0.95);
  switch (rng() % 4) {
    case 0:
      storage.push_back(std::make_unique<LinearGain>(r));
      break;
    case 1:
      storage.push_back(std::make_unique<PowerGain>(r, 0.7));
      break;
    case 2:
      storage.push_back(std::make_unique<LogGain>(r));
      break;
    default:
      storage.push_back(std::make_unique<SaturatingExpGain>(r, 2.0));
      break;
  }
  return *storage.back();
}

// --- The differential driver ----------------------------------------------

// One randomized instance: checks every kernel of the SoA plane against the
// AoS reference on the same inputs, bit for bit.
void RunDifferentialInstance(uint64_t seed, int n) {
  SCOPED_TRACE("seed=" + std::to_string(seed) + " n=" + std::to_string(n));
  random::Rng rng(seed);
  const Dist dist = kAllDists[rng() % std::size(kAllDists)];
  const SkillVector skills = GenSkills(rng, n, dist);
  const int num_groups = PickNumGroups(rng, n);
  std::vector<std::unique_ptr<LearningGainFunction>> gains;
  const LearningGainFunction& gain = PickGain(rng, gains);
  const InteractionMode mode =
      rng() % 2 == 0 ? InteractionMode::kStar : InteractionMode::kClique;

  // Kernel 1: the descending-skill sort permutation.
  std::vector<int> sorted = SortedByskillDescending(skills);
  EXPECT_EQ(sorted, reference::SortedByskillDescending(skills));

  // Kernel 2: skill deficits.
  ExpectBitwiseEqual(SkillDeficits(skills), reference::SkillDeficits(skills),
                     "deficits");

  // Kernel 3: grouping construction (both DyGroups layouts).
  auto star = DyGroupsStarLocal(skills, num_groups);
  auto star_ref = reference::DyGroupsStarLocal(skills, num_groups);
  ASSERT_TRUE(star.ok() && star_ref.ok());
  EXPECT_EQ(star.value().groups, star_ref.value().groups);
  auto clique = DyGroupsCliqueLocal(skills, num_groups);
  auto clique_ref = reference::DyGroupsCliqueLocal(skills, num_groups);
  ASSERT_TRUE(clique.ok() && clique_ref.ok());
  EXPECT_EQ(clique.value().groups, clique_ref.value().groups);

  // Kernel 4: a full interaction round over a *random* partition (exercises
  // the per-group rank sort, both gain kernels, and the scatter-add).
  const Grouping grouping = RandomGrouping(rng, n, num_groups);
  SkillVector updated = skills;
  SkillVector updated_ref = skills;
  auto round = ApplyRound(mode, grouping, gain, updated);
  auto round_ref = reference::ApplyRound(mode, grouping, gain, updated_ref);
  ASSERT_TRUE(round.ok() && round_ref.ok());
  EXPECT_BITEQ(round.value(), round_ref.value());
  ExpectBitwiseEqual(updated, updated_ref, "skills after ApplyRound");

  // ... and the naive (no Theorem-3 shortcut) path.
  SkillVector naive = skills;
  SkillVector naive_ref = skills;
  auto nround = ApplyRoundNaive(mode, grouping, gain, naive);
  auto nround_ref =
      reference::ApplyRoundNaive(mode, grouping, gain, naive_ref);
  ASSERT_TRUE(nround.ok() && nround_ref.ok());
  EXPECT_BITEQ(nround.value(), nround_ref.value());
  ExpectBitwiseEqual(naive, naive_ref, "skills after ApplyRoundNaive");

  // Kernel 5: per-group gain evaluation (the objective's building block).
  for (const auto& members : grouping.groups) {
    auto g = EvaluateGroupGain(mode, members, gain, skills);
    auto g_ref = reference::EvaluateGroupGain(mode, members, gain, skills);
    ASSERT_TRUE(g.ok() && g_ref.ok());
    EXPECT_BITEQ(g.value(), g_ref.value());
  }

  // Kernel 6: the O(n/k) swap-delta, vs deltas recomputed from reference
  // group gains.
  if (num_groups >= 2) {
    int ga = static_cast<int>(rng() % num_groups);
    int gb = static_cast<int>((ga + 1 + rng() % (num_groups - 1)) %
                              num_groups);
    int group_size = n / num_groups;
    int ia = static_cast<int>(rng() % group_size);
    int ib = static_cast<int>(rng() % group_size);
    auto delta = EvaluateRoundGainDelta(mode, grouping, gain, skills, ga, ia,
                                        gb, ib, nullptr, nullptr);
    ASSERT_TRUE(delta.ok());
    std::vector<int> swapped_a = grouping.groups[ga];
    std::vector<int> swapped_b = grouping.groups[gb];
    std::swap(swapped_a[ia], swapped_b[ib]);
    auto old_a =
        reference::EvaluateGroupGain(mode, grouping.groups[ga], gain, skills);
    auto old_b =
        reference::EvaluateGroupGain(mode, grouping.groups[gb], gain, skills);
    auto new_a = reference::EvaluateGroupGain(mode, swapped_a, gain, skills);
    auto new_b = reference::EvaluateGroupGain(mode, swapped_b, gain, skills);
    ASSERT_TRUE(old_a.ok() && old_b.ok() && new_a.ok() && new_b.ok());
    EXPECT_BITEQ(delta.value().old_gain_a, old_a.value());
    EXPECT_BITEQ(delta.value().old_gain_b, old_b.value());
    EXPECT_BITEQ(delta.value().new_gain_a, new_a.value());
    EXPECT_BITEQ(delta.value().new_gain_b, new_b.value());
    EXPECT_BITEQ(delta.value().delta,
                 (new_a.value() + new_b.value()) -
                     (old_a.value() + old_b.value()));
  }

  // Kernel 7: the fused DyGroups round, against FormGroups + ApplyRound on
  // the reference path — both layouts, in the instance's interaction mode
  // (the layout × mode cross-product is intentional: sweeps run e.g. the
  // star layout in clique mode).
  for (auto layout : {soa::DyGroupsLayout::kStarBlocks,
                      soa::DyGroupsLayout::kRoundRobin}) {
    const auto& formed = layout == soa::DyGroupsLayout::kStarBlocks
                             ? star_ref.value()
                             : clique_ref.value();
    SkillVector fused = skills;
    auto fused_gain = soa::DyGroupsRound(layout, mode, gain, fused,
                                         num_groups,
                                         soa::ThreadLocalArena());
    SkillVector ref = skills;
    auto ref_gain = reference::ApplyRound(mode, formed, gain, ref);
    ASSERT_TRUE(fused_gain.ok() && ref_gain.ok());
    EXPECT_BITEQ(fused_gain.value(), ref_gain.value());
    ExpectBitwiseEqual(fused, ref, "skills after fused DyGroupsRound");
  }
}

class SoaDifferentialTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { soa::SetSimdEnabledForTest(GetParam()); }
  void TearDown() override { soa::SetSimdEnabledForTest(true); }
};

// 160 instances x {SIMD on, SIMD off} = 320 randomized instances, n from 2
// to 240 — the small-n regime where every k shape (k=1, k=n, ragged
// remainders against the vector width) occurs.
TEST_P(SoaDifferentialTest, RandomizedSmallInstances) {
  for (uint64_t seed = 1; seed <= 160; ++seed) {
    int n = 2 + static_cast<int>((seed * 7919) % 239);
    RunDifferentialInstance(seed, n);
    if (HasFatalFailure()) return;
  }
}

// Large instances push the sort into its radix path (n >= 512) and the
// round kernels across many vector iterations.
TEST_P(SoaDifferentialTest, RandomizedLargeInstances) {
  for (uint64_t seed = 1000; seed < 1010; ++seed) {
    int n = 512 + static_cast<int>((seed * 104729) % 9489);  // up to 10^4
    RunDifferentialInstance(seed, n);
    if (HasFatalFailure()) return;
  }
}

// Instances past the wide-sort threshold (48K), so the two-pass top-32
// radix + run repair and the key-inversion skill reconstruction of the
// fused round are differentially tested, not just the mid-size paths. A
// slimmer check than RunDifferentialInstance: the naive O(t^2) clique
// oracle is too slow at this size, so only the linear-gain kernels run —
// which are exactly the ones with wide-path-specific code.
TEST_P(SoaDifferentialTest, RandomizedWideSortInstances) {
  for (uint64_t seed = 2000; seed < 2002; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    random::Rng rng(seed);
    const Dist dist = kAllDists[rng() % std::size(kAllDists)];
    const int n = 49152 + 64 * static_cast<int>(rng() % 64);
    const SkillVector skills = GenSkills(rng, n, dist);
    const int num_groups = n / 64;
    LinearGain gain(0.45);

    EXPECT_EQ(SortedByskillDescending(skills),
              reference::SortedByskillDescending(skills));
    ExpectBitwiseEqual(SkillDeficits(skills),
                       reference::SkillDeficits(skills), "deficits");

    for (auto mode : {InteractionMode::kStar, InteractionMode::kClique}) {
      for (auto layout : {soa::DyGroupsLayout::kStarBlocks,
                          soa::DyGroupsLayout::kRoundRobin}) {
        auto formed = layout == soa::DyGroupsLayout::kStarBlocks
                          ? reference::DyGroupsStarLocal(skills, num_groups)
                          : reference::DyGroupsCliqueLocal(skills,
                                                           num_groups);
        ASSERT_TRUE(formed.ok());
        SkillVector fused = skills;
        auto fused_gain =
            soa::DyGroupsRound(layout, mode, gain, fused, num_groups,
                               soa::ThreadLocalArena());
        SkillVector ref = skills;
        auto ref_gain =
            reference::ApplyRound(mode, formed.value(), gain, ref);
        ASSERT_TRUE(fused_gain.ok() && ref_gain.ok());
        EXPECT_BITEQ(fused_gain.value(), ref_gain.value());
        ExpectBitwiseEqual(fused, ref, "skills after wide fused round");
      }
    }
  }
}

// A multi-round process through the production driver (which takes the
// fused SoA path for DyGroups policies when history is off) against a
// hand-rolled reference loop.
TEST_P(SoaDifferentialTest, MultiRoundProcessMatchesReferenceLoop) {
  for (uint64_t seed = 21; seed <= 40; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    random::Rng rng(seed);
    const Dist dist = kAllDists[rng() % std::size(kAllDists)];
    const int n = 4 * (1 + static_cast<int>(rng() % 30));
    const SkillVector skills = GenSkills(rng, n, dist);
    const int num_groups = PickNumGroups(rng, n);
    LinearGain gain(random::UniformReal(rng, 0.05, 0.95));
    const InteractionMode mode =
        rng() % 2 == 0 ? InteractionMode::kStar : InteractionMode::kClique;

    ProcessConfig config;
    config.num_groups = num_groups;
    config.num_rounds = 6;
    config.mode = mode;
    config.record_history = false;  // engage the fused SoA path
    auto policy = MakeDyGroupsPolicy(mode);
    auto result = RunProcess(skills, config, gain, *policy);
    ASSERT_TRUE(result.ok());

    SkillVector current = skills;
    for (int t = 0; t < config.num_rounds; ++t) {
      auto grouping = mode == InteractionMode::kStar
                          ? reference::DyGroupsStarLocal(current, num_groups)
                          : reference::DyGroupsCliqueLocal(current,
                                                           num_groups);
      ASSERT_TRUE(grouping.ok());
      auto round_gain =
          reference::ApplyRound(mode, grouping.value(), gain, current);
      ASSERT_TRUE(round_gain.ok());
      ASSERT_BITEQ(result.value().round_gains[t], round_gain.value());
    }
    ExpectBitwiseEqual(result.value().final_skills, current, "final skills");
  }
}

// The fused path and the record_history (generic) path must agree exactly —
// they are the same process, differing only in data layout.
TEST_P(SoaDifferentialTest, FusedAndHistoryPathsAgree) {
  for (uint64_t seed = 61; seed <= 75; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    random::Rng rng(seed);
    const int n = 6 * (1 + static_cast<int>(rng() % 20));
    const SkillVector skills = GenSkills(rng, n, Dist::kLogNormal);
    const int num_groups = PickNumGroups(rng, n);
    LinearGain gain(random::UniformReal(rng, 0.05, 0.95));
    const InteractionMode mode =
        rng() % 2 == 0 ? InteractionMode::kStar : InteractionMode::kClique;

    ProcessConfig config;
    config.num_groups = num_groups;
    config.num_rounds = 5;
    config.mode = mode;
    config.record_history = false;  // fused SoA path
    auto policy = MakeDyGroupsPolicy(mode);
    auto fused = RunProcess(skills, config, gain, *policy);
    config.record_history = true;
    auto generic = RunProcess(skills, config, gain, *policy);
    ASSERT_TRUE(fused.ok() && generic.ok());
    ExpectBitwiseEqual(fused.value().round_gains,
                       generic.value().round_gains, "round gains");
    ExpectBitwiseEqual(fused.value().final_skills,
                       generic.value().final_skills, "final skills");
  }
}

INSTANTIATE_TEST_SUITE_P(SimdOnOff, SoaDifferentialTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "simd" : "scalar";
                         });

// Scalar and SIMD paths must produce the same bits on the same inputs —
// checked directly here (the parameterized suites prove it transitively
// through the reference).
TEST(SoaSimdParityTest, ElementwiseKernelsMatchScalarBitwise) {
  random::Rng rng(99);
  for (int n : {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<double> x(n);
    for (double& v : x) v = random::UniformReal(rng, -50.0, 50.0);
    std::vector<double> out_simd(n), out_scalar(n);
    std::vector<double> gains_simd(n), gains_scalar(n);

    soa::SetSimdEnabledForTest(true);
    double max_simd = soa::MaxValue(x);
    soa::SubtractFrom(1.5, x, out_simd);
    soa::LinearStarGains(0.37, 60.0, x, gains_simd);

    soa::SetSimdEnabledForTest(false);
    double max_scalar = soa::MaxValue(x);
    soa::SubtractFrom(1.5, x, out_scalar);
    soa::LinearStarGains(0.37, 60.0, x, gains_scalar);
    soa::SetSimdEnabledForTest(true);

    EXPECT_BITEQ(max_simd, max_scalar);
    ExpectBitwiseEqual(out_simd, out_scalar, "SubtractFrom");
    ExpectBitwiseEqual(gains_simd, gains_scalar, "LinearStarGains");
  }
}

}  // namespace
}  // namespace tdg
