// Tests for the shared HTTP/1.1 request machinery in util::net —
// ReadHttpRequest's parsing, limits, and (crucially) its status contract:
// every way a request can be bad maps to a distinct Status code, which the
// servers turn into distinct HTTP errors. The slow-client legs pin down the
// satellite fix: the read timeout is a *total* deadline for the whole
// request, so a dribbling client cannot wedge a handler thread.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "util/net.h"

namespace tdg::util::net {
namespace {

/// Serves exactly one canned request: connects a client writing `wire`
/// (optionally in dribbled chunks) and returns ReadHttpRequest's result
/// from the server side.
StatusOr<HttpRequest> ParseWire(const std::string& wire,
                                const HttpLimits& limits,
                                int chunk_size = 0, int chunk_delay_ms = 0) {
  auto server = ServerSocket::Listen(0);
  if (!server.ok()) return server.status();
  std::thread peer([port = server->port(), wire, chunk_size,
                    chunk_delay_ms] {
    auto client = ConnectLoopback(port);
    if (!client.ok()) return;
    if (chunk_size <= 0) {
      (void)client->WriteAll(wire);
      // Keep the socket open briefly so EOF never races the parse.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return;
    }
    for (size_t i = 0; i < wire.size(); i += static_cast<size_t>(chunk_size)) {
      if (!client->WriteAll(wire.substr(i, static_cast<size_t>(chunk_size)))
               .ok()) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(chunk_delay_ms));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  auto connection = server->AcceptWithTimeout(/*timeout_ms=*/5000);
  StatusOr<HttpRequest> request =
      connection.ok() && connection->is_open()
          ? ReadHttpRequest(*connection, limits)
          : StatusOr<HttpRequest>(Status::Internal("accept failed"));
  if (connection.ok()) connection->Close();
  peer.join();
  return request;
}

HttpLimits TestLimits() {
  HttpLimits limits;
  limits.max_head_bytes = 4096;
  limits.max_body_bytes = 4096;
  limits.read_timeout_ms = 2000;
  return limits;
}

TEST(HttpRequestTest, ParsesMethodPathQueryHeadersAndBody) {
  auto request = ParseWire(
      "POST /cohorts/alg?verbose=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 9\r\n"
      "\r\n"
      "{\"a\": 1}\n",
      TestLimits());
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->path, "/cohorts/alg");
  EXPECT_EQ(request->query, "verbose=1");
  EXPECT_EQ(request->body, "{\"a\": 1}\n");
  // Header names fold to lowercase; values keep their bytes.
  ASSERT_NE(request->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*request->FindHeader("content-type"), "application/json");
  EXPECT_EQ(request->FindHeader("Content-Type"), nullptr)
      << "lookup takes the lowercase name";
  EXPECT_EQ(request->FindHeader("x-absent"), nullptr);
}

TEST(HttpRequestTest, BodySplitAcrossPacketsIsReassembled) {
  const std::string wire =
      "POST /x HTTP/1.1\r\nContent-Length: 26\r\n\r\n"
      "abcdefghijklmnopqrstuvwxyz";
  auto request = ParseWire(wire, TestLimits(), /*chunk_size=*/7,
                           /*chunk_delay_ms=*/5);
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->body, "abcdefghijklmnopqrstuvwxyz");
}

TEST(HttpRequestTest, MissingContentLengthMeansEmptyBody) {
  auto request = ParseWire("GET /healthz HTTP/1.1\r\n\r\n", TestLimits());
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/healthz");
  EXPECT_TRUE(request->query.empty());
  EXPECT_TRUE(request->body.empty());
}

TEST(HttpRequestTest, MalformedRequestsAreInvalidArgument) {
  const std::string malformed[] = {
      "not an http request\r\n\r\n",
      "GET\r\n\r\n",
      "GET /healthz SMTP/1.0\r\n\r\n",
      "GET noslash HTTP/1.1\r\n\r\n",
      "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
      "GET /x HTTP/1.1\r\nBad Header Name: v\r\n\r\n",
      "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
      "POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
  };
  for (const std::string& wire : malformed) {
    auto request = ParseWire(wire, TestLimits());
    ASSERT_FALSE(request.ok()) << "accepted: " << wire;
    EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument)
        << wire << " -> " << request.status();
  }
}

TEST(HttpRequestTest, OversizedHeadIsOutOfRange) {
  std::string wire = "GET /x HTTP/1.1\r\n";
  wire += "X-Padding: " + std::string(8192, 'p') + "\r\n\r\n";
  auto request = ParseWire(wire, TestLimits());
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kOutOfRange)
      << request.status();
}

TEST(HttpRequestTest, OversizedDeclaredBodyIsOutOfRange) {
  // The declared length alone trips the limit — the server rejects before
  // reading (and before the client could even send) a huge body.
  auto request = ParseWire(
      "POST /x HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n", TestLimits());
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kOutOfRange)
      << request.status();
}

TEST(HttpRequestTest, TransferEncodingIsUnimplemented) {
  auto request = ParseWire(
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\n",
      TestLimits());
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kUnimplemented)
      << request.status();
}

TEST(HttpRequestTest, PeerCloseBeforeCompleteRequestIsNotFound) {
  auto server = ServerSocket::Listen(0);
  ASSERT_TRUE(server.ok()) << server.status();
  std::thread peer([port = server->port()] {
    auto client = ConnectLoopback(port);
    ASSERT_TRUE(client.ok()) << client.status();
    (void)client->WriteAll("GET /x HTT");  // hang up mid request line
  });
  auto connection = server->AcceptWithTimeout(/*timeout_ms=*/5000);
  ASSERT_TRUE(connection.ok()) << connection.status();
  ASSERT_TRUE(connection->is_open());
  auto request = ReadHttpRequest(*connection, TestLimits());
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kNotFound)
      << request.status();
  peer.join();
}

TEST(HttpRequestTest, DribblingClientHitsTheTotalDeadline) {
  // 1 byte per 50 ms against a 250 ms total budget: under the old
  // per-chunk progress window each byte reset the clock and the request
  // never failed; the total deadline bounds the whole read.
  HttpLimits limits = TestLimits();
  limits.read_timeout_ms = 250;
  const std::string wire =
      "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n";
  const auto begin = std::chrono::steady_clock::now();
  auto request = ParseWire(wire, limits, /*chunk_size=*/1,
                           /*chunk_delay_ms=*/50);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kFailedPrecondition)
      << request.status();
  EXPECT_LT(elapsed.count(), 1500) << "deadline did not bound the read";
}

TEST(HttpRequestTest, DribbledBodyAlsoHitsTheTotalDeadline) {
  // The head arrives instantly; the body then dribbles. Head and body
  // share ONE deadline — the body read cannot start a fresh budget.
  HttpLimits limits = TestLimits();
  limits.read_timeout_ms = 250;
  std::string wire = "POST /x HTTP/1.1\r\nContent-Length: 40\r\n\r\n";
  wire += std::string(40, 'b');
  const auto begin = std::chrono::steady_clock::now();
  auto request = ParseWire(wire, limits, /*chunk_size=*/45,
                           /*chunk_delay_ms=*/400);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);
  ASSERT_FALSE(request.ok()) << "body read restarted the deadline";
  EXPECT_EQ(request.status().code(), StatusCode::kFailedPrecondition)
      << request.status();
  EXPECT_LT(elapsed.count(), 1500);
}

TEST(HttpRequestTest, ErrorResponsesFollowTheDocumentedMapping) {
  EXPECT_NE(BuildHttpErrorResponse(Status::InvalidArgument("x"))
                .find("HTTP/1.1 400 "),
            std::string::npos);
  EXPECT_NE(BuildHttpErrorResponse(Status::NotFound("x"))
                .find("HTTP/1.1 400 "),
            std::string::npos);
  EXPECT_NE(BuildHttpErrorResponse(Status::FailedPrecondition("x"))
                .find("HTTP/1.1 408 "),
            std::string::npos);
  EXPECT_NE(BuildHttpErrorResponse(Status::OutOfRange("x"))
                .find("HTTP/1.1 413 "),
            std::string::npos);
  EXPECT_NE(BuildHttpErrorResponse(Status::Unimplemented("x"))
                .find("HTTP/1.1 501 "),
            std::string::npos);
  EXPECT_NE(
      BuildHttpErrorResponse(Status::Internal("x")).find("HTTP/1.1 500 "),
      std::string::npos);
}

TEST(HttpRequestTest, HttpStatusCodeParsesResponses) {
  auto code = HttpStatusCode("HTTP/1.1 404 Not Found\r\n\r\n");
  ASSERT_TRUE(code.ok()) << code.status();
  EXPECT_EQ(*code, 404);
  EXPECT_FALSE(HttpStatusCode("SMTP 220 hello").ok());
  EXPECT_FALSE(HttpStatusCode("").ok());
}

}  // namespace
}  // namespace tdg::util::net
