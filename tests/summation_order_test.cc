// Pins the accumulation order of every sum that reaches reported output
// (round gains, total gains, deficit totals, sweep means). Floating-point
// addition is not associative, so if a future SoA kernel vectorized one of
// these reductions the bits of sweep CSV/JSON cells would silently change.
// These tests use magnitude-adversarial inputs where *any* reassociation
// changes the result, and assert the exact sequential left-fold bits.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/interaction.h"
#include "core/learning_gain.h"
#include "core/skills.h"
#include "core/soa.h"
#include "stats/descriptive.h"

namespace tdg {
namespace {

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

// {1e16, 1, -1e16} is the canonical associativity probe:
//   in this order: (1e16 + 1) + -1e16 = 1e16 + -1e16 = 0   (the 1 is lost)
//   reordered:     (1e16 + -1e16) + 1 = 0 + 1          = 1 (the 1 survives)
// so a reduction that reorders terms cannot reproduce these bits.
TEST(SummationOrderTest, OrderedSumIsTheSequentialLeftFold) {
  EXPECT_EQ(soa::OrderedSum(std::vector<double>{1e16, 1.0, -1e16}), 0.0);
  EXPECT_EQ(soa::OrderedSum(std::vector<double>{1e16, -1e16, 1.0}), 1.0);

  // Longer adversarial sequence: compare against an explicit scalar fold.
  std::vector<double> values;
  double x = 1.0;
  for (int i = 0; i < 100; ++i) {
    values.push_back(x);
    values.push_back(-x * (1.0 - 1e-13));
    x *= 1.9;
  }
  double fold = 0.0;
  for (double v : values) fold += v;
  EXPECT_EQ(Bits(soa::OrderedSum(values)), Bits(fold));
}

TEST(SummationOrderTest, TotalSkillUsesTheOrderedFold) {
  std::vector<double> skills = {1e16, 1.0, -1e16, 3.0, 1e-8};
  double fold = 0.0;
  for (double v : skills) fold += v;
  EXPECT_EQ(Bits(TotalSkill(skills)), Bits(fold));
}

TEST(SummationOrderTest, AggregateGainFoldsInParticipantOrder) {
  std::vector<double> before = {1.0, 1e16, 2.0};
  std::vector<double> after = {2.0, 1e16, 1.0};
  double fold = 0.0;
  for (size_t i = 0; i < before.size(); ++i) fold += after[i] - before[i];
  EXPECT_EQ(Bits(AggregateGain(before, after)), Bits(fold));
}

// A round gain is the left fold of group gains in grouping order, each group
// gain the left fold of member gains in rank order. Magnitude-adversarial
// skills make every alternative order produce different bits.
TEST(SummationOrderTest, RoundGainAccumulatesGroupsInGroupingOrder) {
  SkillVector skills = {1e16, 1.0,  0.5,   0.25,   // group 0 (huge teacher)
                        8.0,  4.0,  2.0,   1.0,    // group 1 (moderate)
                        3e-8, 2e-8, 1e-08, 0.5e-8};  // group 2 (tiny)
  Grouping grouping({{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}});
  LinearGain gain(0.5);
  for (auto mode : {InteractionMode::kStar, InteractionMode::kClique}) {
    double fold = 0.0;
    for (const auto& members : grouping.groups) {
      auto group_gain = EvaluateGroupGain(mode, members, gain, skills);
      ASSERT_TRUE(group_gain.ok());
      fold += group_gain.value();
    }
    SkillVector updated = skills;
    auto round_gain = ApplyRound(mode, grouping, gain, updated);
    ASSERT_TRUE(round_gain.ok());
    EXPECT_EQ(Bits(round_gain.value()), Bits(fold));
  }
}

// Groups the round kernel skips (singletons) must contribute exactly nothing
// — not even a `+ 0.0` in a different position of the fold.
TEST(SummationOrderTest, SkippedSingletonGroupsDoNotPerturbTheFold) {
  SkillVector skills = {1e16, 1.0, 42.0, 2.0, 1.5};
  Grouping with_singleton({{0, 1}, {2}, {3, 4}});
  Grouping without({{0, 1}, {3, 4}});
  LinearGain gain(0.5);
  SkillVector a = skills;
  SkillVector b = skills;
  auto ga = ApplyRound(InteractionMode::kStar, with_singleton, gain, a);
  SkillVector b_short = {skills[0], skills[1], skills[3], skills[4]};
  // Not directly comparable (different partitions of different sizes), but
  // the singleton-bearing round must equal the left fold of its two real
  // group gains.
  auto g0 = EvaluateGroupGain(InteractionMode::kStar, {0, 1}, gain, skills);
  auto g2 = EvaluateGroupGain(InteractionMode::kStar, {3, 4}, gain, skills);
  ASSERT_TRUE(ga.ok() && g0.ok() && g2.ok());
  EXPECT_EQ(Bits(ga.value()), Bits(0.0 + g0.value() + g2.value()));
  (void)b;
  (void)without;
}

// stats::Mean (the sweep's cell aggregator) is Kahan-compensated in run
// order. Pin its exact bits so a drive-by "optimization" to a plain or
// vectorized sum shows up as a test failure, not a golden-file surprise.
TEST(SummationOrderTest, SweepMeanIsCompensatedInRunOrder) {
  // 1.0 followed by many sub-ulp terms: a naive fold drops every one of
  // them, the compensated fold accumulates them — so this pin genuinely
  // distinguishes the two (and both differ from any vectorized order).
  std::vector<double> gains = {1.0};
  gains.insert(gains.end(), 10, 1e-16);
  double sum = 0.0;
  double compensation = 0.0;
  double naive = 0.0;
  for (double v : gains) {
    double y = v - compensation;
    double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
    naive += v;
  }
  ASSERT_NE(Bits(sum), Bits(naive)) << "probe is vacuous";
  EXPECT_EQ(Bits(stats::Mean(gains)),
            Bits(sum / static_cast<double>(gains.size())));
}

// The star kernel's per-member gains are SIMD-evaluated but *summed*
// sequentially: flipping SIMD must not move a single bit of the group gain
// even when member magnitudes span 24 orders.
TEST(SummationOrderTest, StarGroupGainBitsAreSimdInvariant) {
  SkillVector skills = {1e16};
  for (int i = 0; i < 37; ++i) {
    skills.push_back(std::pow(10.0, 15.0 - i));
  }
  std::vector<int> members(skills.size());
  for (size_t i = 0; i < members.size(); ++i) members[i] = static_cast<int>(i);
  LinearGain gain(0.37);

  soa::SetSimdEnabledForTest(true);
  auto simd = EvaluateGroupGain(InteractionMode::kStar, members, gain, skills);
  soa::SetSimdEnabledForTest(false);
  auto scalar =
      EvaluateGroupGain(InteractionMode::kStar, members, gain, skills);
  soa::SetSimdEnabledForTest(true);
  ASSERT_TRUE(simd.ok() && scalar.ok());
  EXPECT_EQ(Bits(simd.value()), Bits(scalar.value()));
}

}  // namespace
}  // namespace tdg
