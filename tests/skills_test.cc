#include "core/skills.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tdg {
namespace {

TEST(ValidateSkillsTest, AcceptsPositiveSkills) {
  EXPECT_TRUE(ValidateSkills(SkillVector{0.1, 5.0, 1e-9}).ok());
}

TEST(ValidateSkillsTest, RejectsBadSkills) {
  EXPECT_FALSE(ValidateSkills(SkillVector{}).ok());
  EXPECT_FALSE(ValidateSkills(SkillVector{0.5, 0.0}).ok());
  EXPECT_FALSE(ValidateSkills(SkillVector{0.5, -0.1}).ok());
  EXPECT_FALSE(ValidateSkills(SkillVector{0.5, std::nan("")}).ok());
}

TEST(SortedByskillDescendingTest, SortsWithStableTieBreak) {
  SkillVector skills = {0.5, 0.9, 0.5, 0.1};
  std::vector<int> sorted = SortedByskillDescending(skills);
  EXPECT_EQ(sorted, (std::vector<int>{1, 0, 2, 3}));
}

TEST(TotalSkillTest, Sums) {
  EXPECT_DOUBLE_EQ(TotalSkill(SkillVector{1, 2, 3}), 6.0);
  EXPECT_DOUBLE_EQ(TotalSkill(SkillVector{}), 0.0);
}

TEST(AggregateGainTest, SumsDeltas) {
  EXPECT_DOUBLE_EQ(
      AggregateGain(SkillVector{1, 2}, SkillVector{1.5, 2.25}), 0.75);
  EXPECT_DOUBLE_EQ(AggregateGain(SkillVector{1}, SkillVector{1}), 0.0);
}

TEST(SkillDeficitsTest, MeasuresDistanceToTop) {
  // Paper §IV-C: skills [0.9..0.1] give b = [0, 0.1, ..., 0.8].
  SkillVector skills = {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1};
  std::vector<double> deficits = SkillDeficits(skills);
  for (size_t i = 0; i < skills.size(); ++i) {
    EXPECT_NEAR(deficits[i], 0.1 * static_cast<double>(i), 1e-12);
  }
}

TEST(SkillDeficitsTest, EmptyInput) {
  EXPECT_TRUE(SkillDeficits(SkillVector{}).empty());
}

}  // namespace
}  // namespace tdg
