#include "core/variable_groups.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dygroups.h"
#include "random/distributions.h"

namespace tdg {
namespace {

TEST(SizeProfileTest, Validation) {
  EXPECT_TRUE(ValidateSizeProfile({2, 3, 4}, 9).ok());
  EXPECT_FALSE(ValidateSizeProfile({}, 0).ok());
  EXPECT_FALSE(ValidateSizeProfile({2, 0, 4}, 6).ok());
  EXPECT_FALSE(ValidateSizeProfile({2, 3}, 6).ok());
}

TEST(SizedStarTest, TeachersAreTopMAndSizesRespected) {
  SkillVector skills = {9, 1, 8, 2, 7, 3, 6, 4, 5};  // n = 9
  std::vector<int> sizes = {2, 3, 4};
  auto grouping = DyGroupsStarLocalSized(skills, sizes);
  ASSERT_TRUE(grouping.ok());
  ASSERT_TRUE(grouping->ValidatePartition(9).ok());
  for (size_t g = 0; g < sizes.size(); ++g) {
    EXPECT_EQ(static_cast<int>(grouping->groups[g].size()), sizes[g]);
  }
  // Teachers: the strongest (skill 9, id 0) leads the largest group
  // (size 4 = group 2), then skill 8 -> size-3 group, skill 7 -> size-2
  // group (rearrangement-optimal matching).
  EXPECT_EQ(grouping->groups[2].front(), 0);
  EXPECT_EQ(grouping->groups[1].front(), 2);
  EXPECT_EQ(grouping->groups[0].front(), 4);
}

TEST(SizedCliqueTest, QuotaDealGivesProportionalCrossSections) {
  SkillVector skills = {6, 5, 4, 3, 2, 1};
  std::vector<int> sizes = {2, 4};
  auto grouping = DyGroupsCliqueLocalSized(skills, sizes);
  ASSERT_TRUE(grouping.ok());
  // Quota deal (group g owed size_g * (rank+1) / n): ranks go
  // g1, g0, g1, g1, g0, g1 — each group receives a proportional
  // cross-section of the skill range instead of the top block.
  EXPECT_EQ(grouping->groups[0], (std::vector<int>{1, 4}));
  EXPECT_EQ(grouping->groups[1], (std::vector<int>{0, 2, 3, 5}));
}

TEST(SizedCliqueTest, EveryGroupSpansTheSkillRangeUnderSkew) {
  // 60 members, one giant group: the giant must not absorb the entire weak
  // tail, and the small groups must not be elite-only.
  SkillVector skills(60);
  for (int i = 0; i < 60; ++i) skills[i] = 60.0 - i;  // id i has rank i
  std::vector<int> sizes = {5, 5, 50};
  auto grouping = DyGroupsCliqueLocalSized(skills, sizes);
  ASSERT_TRUE(grouping.ok());
  for (int g = 0; g < 2; ++g) {
    int min_rank = 60;
    int max_rank = -1;
    for (int id : grouping->groups[g]) {
      min_rank = std::min(min_rank, id);
      max_rank = std::max(max_rank, id);
    }
    EXPECT_LT(min_rank, 15) << "group " << g << " lacks a strong member";
    EXPECT_GT(max_rank, 45) << "group " << g << " lacks a weak member";
  }
}

TEST(SizedPoliciesTest, ReduceToEquiSizedAlgorithms) {
  random::Rng rng(5);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 12);
  std::vector<int> uniform_sizes = {4, 4, 4};
  auto sized_star = DyGroupsStarLocalSized(skills, uniform_sizes);
  auto equi_star = DyGroupsStarLocal(skills, 3);
  ASSERT_TRUE(sized_star.ok() && equi_star.ok());
  EXPECT_EQ(sized_star->CanonicalKey(), equi_star->CanonicalKey());

  auto sized_clique = DyGroupsCliqueLocalSized(skills, uniform_sizes);
  auto equi_clique = DyGroupsCliqueLocal(skills, 3);
  ASSERT_TRUE(sized_clique.ok() && equi_clique.ok());
  EXPECT_EQ(sized_clique->CanonicalKey(), equi_clique->CanonicalKey());
}

TEST(RandomGroupingSizedTest, ValidAndSeeded) {
  random::Rng rng(6);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 10);
  std::vector<int> sizes = {3, 3, 4};
  random::Rng policy_rng(7);
  auto grouping = RandomGroupingSized(skills, sizes, policy_rng);
  ASSERT_TRUE(grouping.ok());
  ASSERT_TRUE(grouping->ValidatePartition(10).ok());
  for (size_t g = 0; g < sizes.size(); ++g) {
    EXPECT_EQ(static_cast<int>(grouping->groups[g].size()), sizes[g]);
  }
}

TEST(RunSizedProcessTest, RunsAndBeatsRandomOnAverage) {
  random::Rng rng(8);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 30);
  std::vector<int> sizes = {3, 5, 7, 15};
  LinearGain gain(0.5);

  SizedProcessConfig config;
  config.group_sizes = sizes;
  config.num_rounds = 4;
  config.mode = InteractionMode::kStar;

  auto dygroups = RunSizedProcess(
      skills, config, gain,
      [](const SkillVector& s, const std::vector<int>& sz) {
        return DyGroupsStarLocalSized(s, sz);
      });
  ASSERT_TRUE(dygroups.ok());
  EXPECT_EQ(dygroups->round_gains.size(), 4u);
  EXPECT_GT(dygroups->total_gain, 0.0);
  for (const RoundRecord& record : dygroups->history) {
    for (size_t g = 0; g < sizes.size(); ++g) {
      EXPECT_EQ(static_cast<int>(record.grouping.groups[g].size()),
                sizes[g]);
    }
  }

  double random_total = 0.0;
  constexpr int kRuns = 5;
  for (int run = 0; run < kRuns; ++run) {
    random::Rng policy_rng(100 + run);
    auto result = RunSizedProcess(
        skills, config, gain,
        [&policy_rng](const SkillVector& s, const std::vector<int>& sz) {
          return RandomGroupingSized(s, sz, policy_rng);
        });
    ASSERT_TRUE(result.ok());
    random_total += result->total_gain;
  }
  EXPECT_GT(dygroups->total_gain, random_total / kRuns);
}

TEST(RunSizedProcessTest, RejectsRuleViolatingProfile) {
  SkillVector skills = {1, 2, 3, 4};
  LinearGain gain(0.5);
  SizedProcessConfig config;
  config.group_sizes = {2, 2};
  config.num_rounds = 1;
  auto result = RunSizedProcess(
      skills, config, gain,
      [](const SkillVector&, const std::vector<int>&) {
        return Grouping({{0}, {1, 2, 3}});  // wrong sizes
      });
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace tdg
