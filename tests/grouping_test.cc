#include "core/grouping.h"

#include <gtest/gtest.h>

namespace tdg {
namespace {

TEST(GroupingTest, ValidEquiSizedPartitionPasses) {
  Grouping g({{0, 2}, {1, 3}});
  EXPECT_TRUE(g.ValidateEquiSized(4).ok());
  EXPECT_TRUE(g.ValidatePartition(4).ok());
  EXPECT_EQ(g.num_groups(), 2);
  EXPECT_EQ(g.num_members(), 4);
}

TEST(GroupingTest, DetectsUnequalSizes) {
  Grouping g({{0, 1, 2}, {3}});
  EXPECT_FALSE(g.ValidateEquiSized(4).ok());
  EXPECT_TRUE(g.ValidatePartition(4).ok());  // still a partition
}

TEST(GroupingTest, DetectsDuplicatesAndGaps) {
  EXPECT_FALSE(Grouping({{0, 1}, {1, 2}}).ValidatePartition(4).ok());
  EXPECT_FALSE(Grouping({{0, 1}, {2}}).ValidatePartition(4).ok());
  EXPECT_FALSE(Grouping({{0, 1}, {2, 5}}).ValidatePartition(4).ok());
  EXPECT_FALSE(Grouping({{0, -1}}).ValidatePartition(2).ok());
  EXPECT_FALSE(Grouping({{0, 1}, {}}).ValidatePartition(2).ok());
  EXPECT_FALSE(Grouping().ValidatePartition(0).ok());
}

TEST(GroupingTest, CanonicalizationSortsMembersAndGroups) {
  Grouping g({{3, 1}, {2, 0}});
  Grouping canonical = g.Canonicalized();
  EXPECT_EQ(canonical.groups,
            (std::vector<std::vector<int>>{{0, 2}, {1, 3}}));
}

TEST(GroupingTest, CanonicalKeyIdentifiesSamePartition) {
  Grouping a({{3, 1}, {2, 0}});
  Grouping b({{0, 2}, {1, 3}});
  Grouping c({{0, 1}, {2, 3}});
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  EXPECT_NE(a.CanonicalKey(), c.CanonicalKey());
  EXPECT_EQ(a.CanonicalKey(), "0,2|1,3");
}

TEST(GroupingTest, ToStringIsReadable) {
  Grouping g({{0, 1}, {2}});
  EXPECT_EQ(g.ToString(), "[[0,1],[2]]");
}

TEST(GroupingFromAssignmentTest, BuildsGroups) {
  auto g = GroupingFromAssignment({0, 1, 0, 1}, 2);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->groups, (std::vector<std::vector<int>>{{0, 2}, {1, 3}}));
}

TEST(GroupingFromAssignmentTest, RejectsBadAssignments) {
  EXPECT_FALSE(GroupingFromAssignment({0, 2}, 2).ok());   // index out of range
  EXPECT_FALSE(GroupingFromAssignment({0, 0}, 2).ok());   // group 1 empty
  EXPECT_FALSE(GroupingFromAssignment({}, 0).ok());
}

}  // namespace
}  // namespace tdg
