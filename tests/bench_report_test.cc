// Tests for obs::BenchReport / BenchReporter (the --report_out telemetry
// artifact every bench binary emits) and the obs::EventLog JSONL stream:
// accumulation semantics, flag parsing, JSON round-trips, structural
// validation, counter-delta capture via ScopedBenchRep, and thread safety
// of concurrent event emission.

#include "obs/bench_report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace tdg::obs {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(BenchReporterTest, ParseReportFlagFormsAndBenchName) {
  {
    BenchReporter reporter;
    const char* argv[] = {"/usr/bin/bench_fig05", "--report_out=/tmp/r.json",
                          "--seed=99"};
    EXPECT_TRUE(reporter.ParseReportFlag(3, argv));
    EXPECT_EQ(reporter.bench_name(), "bench_fig05");
    EXPECT_EQ(reporter.output_path(), "/tmp/r.json");
    BenchReport report = reporter.Build();
    EXPECT_EQ(report.manifest.seed, 99u);
    ASSERT_EQ(report.manifest.args.size(), 2u);
    EXPECT_EQ(report.manifest.args[0], "--report_out=/tmp/r.json");
  }
  {
    BenchReporter reporter;
    const char* argv[] = {"bench", "--report_out", "/tmp/r2.json"};
    EXPECT_TRUE(reporter.ParseReportFlag(3, argv));
    EXPECT_EQ(reporter.output_path(), "/tmp/r2.json");
  }
  {
    BenchReporter reporter;
    const char* argv[] = {"bench", "--csv=/tmp/x.csv"};
    EXPECT_FALSE(reporter.ParseReportFlag(2, argv));
    EXPECT_FALSE(reporter.enabled());
  }
}

TEST(BenchReporterTest, AccumulatesRepsInInsertionOrder) {
  BenchReporter reporter("unit");
  reporter.RecordRep("case/b", 10.0, 1.0);
  reporter.RecordRep("case/a", 20.0, 2.0);
  reporter.RecordRep("case/b", 12.0, 1.5);
  reporter.AddCounter("case/a", "nodes", 100.0);
  reporter.AddCounter("case/a", "nodes", 50.0);

  BenchReport report = reporter.Build();
  ASSERT_EQ(report.cases.size(), 2u);
  EXPECT_EQ(report.cases[0].key, "case/b");  // first-recorded first
  EXPECT_EQ(report.cases[1].key, "case/a");
  ASSERT_EQ(report.cases[0].wall_micros.size(), 2u);
  EXPECT_DOUBLE_EQ(report.cases[0].MeanWallMicros(), 11.0);
  EXPECT_DOUBLE_EQ(report.cases[1].counters.at("nodes"), 150.0);

  reporter.Reset();
  EXPECT_TRUE(reporter.Build().cases.empty());
}

TEST(BenchReportTest, JsonRoundTripAndFileIo) {
  BenchReporter reporter("roundtrip");
  reporter.RecordRep("k1", 100.0, 3.25);
  reporter.RecordRep("k1", 120.0, 3.25);
  reporter.RecordRep("k2", 5.5, -1.0);
  reporter.AddCounter("k2", "steals", 7.0);
  BenchReport report = reporter.Build();
  ASSERT_TRUE(report.Validate().ok()) << report.Validate();

  auto parsed = BenchReport::FromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->bench_name, "roundtrip");
  ASSERT_EQ(parsed->cases.size(), 2u);
  EXPECT_EQ(parsed->cases[0].key, "k1");
  EXPECT_EQ(parsed->cases[0].wall_micros,
            (std::vector<double>{100.0, 120.0}));
  EXPECT_DOUBLE_EQ(parsed->cases[1].counters.at("steals"), 7.0);
  EXPECT_TRUE(parsed->Validate().ok());

  const std::string path = TempPath("tdg_bench_report_test.json");
  ASSERT_TRUE(report.WriteFile(path).ok());
  auto from_file = BenchReport::ReadFile(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status();
  EXPECT_EQ(from_file->ToJson().Serialize(), report.ToJson().Serialize());
  std::remove(path.c_str());
}

TEST(BenchReportTest, ValidateCatchesStructuralDefects) {
  BenchReporter reporter("validate");
  reporter.RecordRep("ok", 1.0, 2.0);
  BenchReport good = reporter.Build();
  EXPECT_TRUE(good.Validate().ok());

  BenchReport no_cases = good;
  no_cases.cases.clear();
  EXPECT_FALSE(no_cases.Validate().ok());

  BenchReport dup = good;
  dup.cases.push_back(dup.cases[0]);
  EXPECT_FALSE(dup.Validate().ok());

  BenchReport mismatched = good;
  mismatched.cases[0].objective.push_back(1.0);
  EXPECT_FALSE(mismatched.Validate().ok());

  BenchReport negative = good;
  negative.cases[0].wall_micros[0] = -1.0;
  EXPECT_FALSE(negative.Validate().ok());

  BenchReport bad_schema = good;
  bad_schema.schema = "tdg.bench_report.v0";
  EXPECT_FALSE(bad_schema.Validate().ok());
}

TEST(BenchReportTest, FromJsonRejectsMalformedDocuments) {
  EXPECT_FALSE(BenchReport::FromJson(util::JsonValue(1.0)).ok());
  util::JsonValue wrong_schema = util::JsonValue::MakeObject();
  wrong_schema.Set("schema", "nope");
  EXPECT_FALSE(BenchReport::FromJson(wrong_schema).ok());
}

TEST(ScopedBenchRepTest, RecordsWallTimeObjectiveAndCounterDeltas) {
  const bool metrics_were_enabled = MetricsEnabled();
  SetMetricsEnabled(true);
  Counter& counter =
      MetricsRegistry::Global().GetCounter("bench_report_test/work");
  counter.Reset();

  BenchReporter reporter("scoped");
  {
    ScopedBenchRep rep(reporter, "case");
    counter.Add(17);
    rep.set_objective(2.5);
  }
  // A second scope that bumps nothing must not attach the counter again.
  { ScopedBenchRep rep(reporter, "case"); }

  BenchReport report = reporter.Build();
  ASSERT_EQ(report.cases.size(), 1u);
  const BenchCase& bench_case = report.cases[0];
  ASSERT_EQ(bench_case.wall_micros.size(), 2u);
  EXPECT_GE(bench_case.wall_micros[0], 0.0);
  EXPECT_DOUBLE_EQ(bench_case.objective[0], 2.5);
  EXPECT_DOUBLE_EQ(bench_case.objective[1], 0.0);
  EXPECT_DOUBLE_EQ(bench_case.counters.at("bench_report_test/work"), 17.0);

  counter.Reset();
  SetMetricsEnabled(metrics_were_enabled);
}

TEST(ScopedBenchRepTest, CountersFirstCreatedDuringScopeBaselineAtZero) {
  const bool metrics_were_enabled = MetricsEnabled();
  SetMetricsEnabled(true);
  // Register (and bump) the counter only *inside* the scope: the snapshot
  // taken at scope entry has no entry for it, and the delta must treat that
  // missing before-value as 0 — not skip the counter or underflow.
  const std::string name =
      "bench_report_test/created_in_scope_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  BenchReporter reporter("scoped");
  {
    ScopedBenchRep rep(reporter, "case");
    MetricsRegistry::Global().GetCounter(name).Add(23);
  }
  BenchReport report = reporter.Build();
  ASSERT_EQ(report.cases.size(), 1u);
  ASSERT_EQ(report.cases[0].counters.count(name), 1u);
  EXPECT_DOUBLE_EQ(report.cases[0].counters.at(name), 23.0);

  MetricsRegistry::Global().GetCounter(name).Reset();
  SetMetricsEnabled(metrics_were_enabled);
}

TEST(BenchReportTest, V2RoundTripsCounterSeriesAndBackend) {
  BenchReporter reporter("v2");
  reporter.RecordRep("case", 10.0, 1.0);
  reporter.RecordRep("case", 12.0, 1.5);
  reporter.RecordSeriesValue("case", "perf/total/instructions", 1000.0);
  reporter.RecordSeriesValue("case", "perf/total/instructions", 1010.0);
  reporter.RecordSeriesValue("case", "perf/total/cycles", 400.0);
  reporter.RecordSeriesValue("case", "perf/total/cycles", 420.0);
  reporter.set_perf_backend("perf_event");
  BenchReport report = reporter.Build();
  EXPECT_EQ(report.schema, BenchReport::kSchema);
  ASSERT_TRUE(report.Validate().ok()) << report.Validate();

  auto parsed = BenchReport::FromJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->schema, BenchReport::kSchema);
  EXPECT_EQ(parsed->perf_backend, "perf_event");
  ASSERT_EQ(parsed->cases.size(), 1u);
  EXPECT_EQ(parsed->cases[0].counter_series.at("perf/total/instructions"),
            (std::vector<double>{1000.0, 1010.0}));
  EXPECT_EQ(parsed->cases[0].counter_series.at("perf/total/cycles"),
            (std::vector<double>{400.0, 420.0}));
  EXPECT_TRUE(parsed->Validate().ok()) << parsed->Validate();
}

TEST(BenchReportTest, ReadsV1ArtifactsWithoutProfilingFields) {
  // A v1 artifact is exactly a v2 one minus counter_series/perf_backend.
  BenchReporter reporter("v1_compat");
  reporter.RecordRep("case", 10.0, 1.0);
  reporter.AddCounter("case", "nodes", 5.0);
  util::JsonValue json = reporter.Build().ToJson();
  json.Set("schema", BenchReport::kSchemaV1);

  auto parsed = BenchReport::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->schema, BenchReport::kSchemaV1);  // schema is preserved
  EXPECT_TRUE(parsed->perf_backend.empty());
  ASSERT_EQ(parsed->cases.size(), 1u);
  EXPECT_TRUE(parsed->cases[0].counter_series.empty());
  EXPECT_TRUE(parsed->Validate().ok()) << parsed->Validate();
}

TEST(BenchReportTest, ValidateRejectsCounterSeriesLengthMismatch) {
  BenchReporter reporter("series_len");
  reporter.RecordRep("case", 10.0, 1.0);
  reporter.RecordRep("case", 11.0, 1.0);
  reporter.RecordSeriesValue("case", "perf/total/cycles", 400.0);
  BenchReport report = reporter.Build();  // series has 1 sample, 2 reps
  auto status = report.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("perf/total/cycles"), std::string::npos)
      << status;
}

TEST(EventLogTest, EmitWritesParseableJsonlWithStamps) {
  const std::string path = TempPath("tdg_event_log_test.jsonl");
  EventLog log;
  ASSERT_TRUE(log.Open(path).ok());
  EXPECT_TRUE(log.active());
  log.Emit("unit/start");
  log.Emit("unit/cell", util::JsonValue::Object{
                            {"policy", "DyGroups-Star"},
                            {"mean_gain", 12.5},
                        });
  log.Close();
  EXPECT_FALSE(log.active());
  EXPECT_EQ(log.events_written(), 2);

  auto events = ParseEventLogFile(path);
  ASSERT_TRUE(events.ok()) << events.status();
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].event, "unit/start");
  EXPECT_EQ((*events)[1].event, "unit/cell");
  EXPECT_GE((*events)[1].ts_micros, (*events)[0].ts_micros);
  auto policy = (*events)[1].fields.GetField("policy");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy->AsString(), "DyGroups-Star");
  std::remove(path.c_str());
}

TEST(EventLogTest, InactiveEmitIsANoOpAndParseReportsBadLines) {
  EventLog log;
  log.Emit("dropped");  // never opened: must not crash, must not count
  EXPECT_EQ(log.events_written(), 0);

  const std::string path = TempPath("tdg_event_log_bad.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"event\": \"ok\", \"ts_micros\": 1, \"tid\": 0}\n";
    out << "this is not json\n";
  }
  auto events = ParseEventLogFile(path);
  EXPECT_FALSE(events.ok());
  // The error names the offending line.
  EXPECT_NE(events.status().ToString().find(":2:"), std::string::npos)
      << events.status();
  std::remove(path.c_str());
}

TEST(EventLogTest, ConcurrentEmitsNeverInterleave) {
  const std::string path = TempPath("tdg_event_log_mt.jsonl");
  EventLog log;
  ASSERT_TRUE(log.Open(path).ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  util::ThreadPool pool(kThreads);
  util::ParallelFor(pool, kThreads * kPerThread, [&](int i) {
    log.Emit("mt/event", util::JsonValue::Object{{"i", i}});
  });
  log.Close();
  EXPECT_EQ(log.events_written(), kThreads * kPerThread);

  auto events = ParseEventLogFile(path);
  ASSERT_TRUE(events.ok()) << events.status();  // every line parses whole
  ASSERT_EQ(events->size(),
            static_cast<size_t>(kThreads * kPerThread));
  std::set<int> seen;
  for (const EventRecord& record : *events) {
    auto i = record.fields.GetField("i");
    ASSERT_TRUE(i.ok());
    seen.insert(static_cast<int>(i->AsNumber()));
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads * kPerThread));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tdg::obs
