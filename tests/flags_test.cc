#include "util/flags.h"

#include <gtest/gtest.h>

namespace tdg::util {
namespace {

FlagParser ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  FlagParser parser;
  EXPECT_TRUE(parser.Parse(static_cast<int>(args.size()), args.data()).ok());
  return parser;
}

TEST(FlagParserTest, EqualsAndSpaceSyntax) {
  FlagParser flags = ParseArgs({"--n=100", "--r", "0.5"});
  EXPECT_EQ(flags.GetInt("n", 0), 100);
  EXPECT_DOUBLE_EQ(flags.GetDouble("r", 0), 0.5);
}

TEST(FlagParserTest, BareFlagIsTrue) {
  FlagParser flags = ParseArgs({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.HasFlag("verbose"));
  EXPECT_FALSE(flags.HasFlag("quiet"));
}

TEST(FlagParserTest, DefaultsWhenAbsentOrMalformed) {
  FlagParser flags = ParseArgs({"--n=abc"});
  EXPECT_EQ(flags.GetInt("n", 7), 7);
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_EQ(flags.GetString("mode", "star"), "star");
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser flags = ParseArgs({"input.csv", "--k=3", "output.csv"});
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
  EXPECT_EQ(flags.GetInt("k", 0), 3);
}

TEST(FlagParserTest, BoolSpellings) {
  FlagParser flags =
      ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=on", "--e=false"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_TRUE(flags.GetBool("d", false));
  EXPECT_FALSE(flags.GetBool("e", true));
}

TEST(FlagParserTest, RejectsBareDoubleDash) {
  const char* args[] = {"binary", "--"};
  FlagParser parser;
  EXPECT_FALSE(parser.Parse(2, args).ok());
}

TEST(FlagParserTest, FlagFollowedByFlagIsTrue) {
  FlagParser flags = ParseArgs({"--fast", "--n=10"});
  EXPECT_TRUE(flags.GetBool("fast", false));
  EXPECT_EQ(flags.GetInt("n", 0), 10);
}

}  // namespace
}  // namespace tdg::util
