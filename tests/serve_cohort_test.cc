// Tests for the serving plane's resident state machine (serve::Cohort) and
// its write-ahead journal layer (serve::CohortManager):
//
//   * equivalence — a churn-free, evenly divisible cohort reproduces the
//     batch core::RunProcess run *bitwise* (groupings, gains, skills),
//     which is what makes served groupings offline-auditable;
//   * the m/m+1 size profile and the join/leave/advance validation grammar;
//   * durability — journals replay to bitwise-identical state (RNG stream
//     included), a torn final line is healed, a corrupt middle line or a
//     foreign digest is refused, and a restored cohort's *future* rounds
//     match an uninterrupted one's.

#include "serve/cohort.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/dygroups.h"
#include "core/process.h"
#include "serve/cohort_manager.h"
#include "sweep_shard_test_util.h"
#include "util/file_util.h"

namespace tdg::serve {
namespace {

std::vector<CohortParticipant> MakeParticipants(int n) {
  std::vector<CohortParticipant> participants;
  for (int i = 0; i < n; ++i) {
    // Built with += rather than `"p" + std::to_string(i)` to dodge GCC 12's
    // -Wrestrict false positive (PR105651) on rvalue string concatenation.
    std::string key = "p";
    key += std::to_string(i);
    participants.push_back({std::move(key), 1.0 + 0.37 * static_cast<double>(i)});
  }
  return participants;
}

CohortConfig StarConfig(int group_size) {
  CohortConfig config;
  config.group_size = group_size;
  config.policy = CohortPolicy::kStar;
  config.mode = InteractionMode::kStar;
  config.learning_rate = 0.25;
  return config;
}

TEST(ServeCohortTest, SizeProfileCoversAllRegimes) {
  // n < m: one undersized group.
  auto tiny = Cohort::SizeProfileFor(3, 5);
  ASSERT_TRUE(tiny.ok()) << tiny.status();
  EXPECT_EQ(*tiny, std::vector<int>({3}));
  // Even split.
  auto even = Cohort::SizeProfileFor(12, 4);
  ASSERT_TRUE(even.ok()) << even.status();
  EXPECT_EQ(*even, std::vector<int>({4, 4, 4}));
  // Remainder spreads +1 over the first groups.
  auto ragged = Cohort::SizeProfileFor(14, 4);
  ASSERT_TRUE(ragged.ok()) << ragged.status();
  EXPECT_EQ(*ragged, std::vector<int>({5, 5, 4}));
  // m <= n < 2m: one group absorbs the whole remainder (an m/m+1 split
  // does not exist — the original spread-over-k loop overflowed here).
  auto absorbed = Cohort::SizeProfileFor(7, 5);
  ASSERT_TRUE(absorbed.ok()) << absorbed.status();
  EXPECT_EQ(*absorbed, std::vector<int>({7}));
  // n mod m > k but k > 1: balanced, never undersized.
  auto balanced = Cohort::SizeProfileFor(11, 4);
  ASSERT_TRUE(balanced.ok()) << balanced.status();
  EXPECT_EQ(*balanced, std::vector<int>({6, 5}));

  EXPECT_FALSE(Cohort::SizeProfileFor(0, 4).ok());
  EXPECT_FALSE(Cohort::SizeProfileFor(4, 0).ok());
}

TEST(ServeCohortTest, ValidationGrammar) {
  EXPECT_TRUE(ValidateCohortId("algebra-101_B").ok());
  EXPECT_FALSE(ValidateCohortId("").ok());
  EXPECT_FALSE(ValidateCohortId("has space").ok());
  EXPECT_FALSE(ValidateCohortId("slash/y").ok());
  EXPECT_FALSE(ValidateCohortId(std::string(65, 'a')).ok());

  EXPECT_TRUE(ValidateParticipantKey("alice@example").ok());
  EXPECT_FALSE(ValidateParticipantKey("").ok());
  EXPECT_FALSE(ValidateParticipantKey("a/b").ok());
  EXPECT_FALSE(ValidateParticipantKey("quo\"te").ok());
  EXPECT_FALSE(ValidateParticipantKey("ctrl\x01").ok());

  auto cohort = Cohort::Create("c", StarConfig(2), MakeParticipants(4));
  ASSERT_TRUE(cohort.ok()) << cohort.status();
  // Join: bad skills and duplicates.
  EXPECT_EQ(cohort->Join("x", 0.0).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(cohort->Join("x", -1.0).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(cohort->Join("p0", 2.0).code(),
            util::StatusCode::kFailedPrecondition);
  // Leave: absent key.
  EXPECT_EQ(cohort->Leave("ghost").code(), util::StatusCode::kNotFound);
  // Leave preserves insertion order of the others.
  ASSERT_TRUE(cohort->Leave("p1").ok());
  ASSERT_EQ(cohort->num_participants(), 3);
  EXPECT_EQ(cohort->participants()[0].key, "p0");
  EXPECT_EQ(cohort->participants()[1].key, "p2");
  EXPECT_EQ(cohort->participants()[2].key, "p3");
  // Advance on an empty cohort is a precondition failure.
  for (const char* key : {"p0", "p2", "p3"}) {
    ASSERT_TRUE(cohort->Leave(key).ok());
  }
  EXPECT_EQ(cohort->Advance().status().code(),
            util::StatusCode::kFailedPrecondition);
}

// The load-bearing equivalence: a churn-free cohort whose size divides
// evenly reproduces the batch RunProcess run bitwise, for both DyGroups
// policies. (The sized-grouping constructions reduce exactly to the
// equi-sized algorithms on an all-equal profile, and both drivers run the
// same ApplyRound kernel.)
TEST(ServeCohortTest, ChurnFreeCohortMatchesRunProcessBitwise) {
  const int n = 12, group_size = 3, rounds = 6;
  struct Case {
    CohortPolicy policy;
    InteractionMode mode;
  };
  for (const Case& c : {Case{CohortPolicy::kStar, InteractionMode::kStar},
                        Case{CohortPolicy::kClique,
                             InteractionMode::kClique}}) {
    CohortConfig config;
    config.group_size = group_size;
    config.policy = c.policy;
    config.mode = c.mode;
    config.learning_rate = 0.3;
    auto participants = MakeParticipants(n);
    auto cohort = Cohort::Create("equiv", config, participants);
    ASSERT_TRUE(cohort.ok()) << cohort.status();
    for (int t = 0; t < rounds; ++t) {
      ASSERT_TRUE(cohort->Advance().ok());
    }

    SkillVector skills;
    for (const CohortParticipant& participant : participants) {
      skills.push_back(participant.skill);
    }
    auto gain = LinearGain::Create(config.learning_rate);
    ASSERT_TRUE(gain.ok());
    ProcessConfig process_config;
    process_config.num_groups = n / group_size;
    process_config.num_rounds = rounds;
    process_config.mode = c.mode;
    process_config.record_history = true;
    auto policy = MakeDyGroupsPolicy(c.mode);
    auto result = RunProcess(skills, process_config, *gain, *policy);
    ASSERT_TRUE(result.ok()) << result.status();

    ASSERT_EQ(cohort->rounds_advanced(), rounds);
    for (int t = 0; t < rounds; ++t) {
      const CohortRound& round =
          cohort->rounds()[static_cast<size_t>(t)];
      const RoundRecord& record =
          result->history[static_cast<size_t>(t)];
      // Gains bitwise (== on doubles, no tolerance).
      EXPECT_EQ(round.gain,
                result->round_gains[static_cast<size_t>(t)])
          << "round " << t;
      // Same partition with the same group labels.
      std::vector<int> expected(static_cast<size_t>(n), 0);
      for (size_t g = 0; g < record.grouping.groups.size(); ++g) {
        for (int id : record.grouping.groups[g]) {
          expected[static_cast<size_t>(id)] = static_cast<int>(g);
        }
      }
      EXPECT_EQ(round.assignment, expected) << "round " << t;
    }
    // Final skills bitwise.
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(cohort->participants()[static_cast<size_t>(i)].skill,
                result->final_skills[static_cast<size_t>(i)])
          << "participant " << i;
    }
  }
}

// --- journal layer --------------------------------------------------------

class ServeJournalTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = test::MakeScratchDir(); }

  CohortManager::Options DiskOptions() const {
    CohortManager::Options options;
    options.state_dir = dir_ + "/state";
    return options;
  }

  std::string JournalPath(const std::string& id) const {
    return dir_ + "/state/" + id + ".cohort";
  }

  /// Enrolls a random-policy cohort (the RNG-stream acid test) and runs a
  /// churny schedule against `manager`.
  void RunChurnySchedule(CohortManager& manager) {
    CohortConfig config;
    config.group_size = 3;
    config.policy = CohortPolicy::kRandom;
    config.mode = InteractionMode::kClique;
    config.learning_rate = 0.2;
    config.seed = 99;
    ASSERT_TRUE(manager.Enroll("rand", config, MakeParticipants(9)).ok());
    ASSERT_TRUE(manager.Advance("rand").ok());
    ASSERT_TRUE(manager.Join("rand", "late-1", 2.5).ok());
    ASSERT_TRUE(manager.Advance("rand").ok());
    ASSERT_TRUE(manager.Leave("rand", "p3").ok());
    ASSERT_TRUE(manager.Join("rand", "late-2", 0.75).ok());
    ASSERT_TRUE(manager.Advance("rand").ok());
    ASSERT_TRUE(manager.Advance("rand").ok());
  }

  std::string dir_;
};

TEST_F(ServeJournalTest, ReplayRestoresBitwiseStateAndRngStream) {
  {
    auto manager = CohortManager::Open(DiskOptions());
    ASSERT_TRUE(manager.ok()) << manager.status();
    RunChurnySchedule(**manager);
  }  // drop the manager; journals stay

  // An uninterrupted in-memory run of the same schedule is the reference.
  auto reference = CohortManager::Open({});
  ASSERT_TRUE(reference.ok()) << reference.status();
  RunChurnySchedule(**reference);

  auto restored = CohortManager::Open(DiskOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ((*restored)->restored_cohorts(), 1);

  auto restored_cohort = (*restored)->SnapshotCohort("rand");
  auto reference_cohort = (*reference)->SnapshotCohort("rand");
  ASSERT_TRUE(restored_cohort.ok()) << restored_cohort.status();
  ASSERT_TRUE(reference_cohort.ok());
  // Bitwise state: every round (keys, assignment, gain) and every resident
  // skill. CohortRound/CohortParticipant equality is defaulted ==, i.e.
  // exact doubles.
  EXPECT_EQ(restored_cohort->rounds(), reference_cohort->rounds());
  EXPECT_EQ(restored_cohort->participants(),
            reference_cohort->participants());

  // The acid test for the random policy: the NEXT round after restore
  // consumes the RNG stream exactly where the pre-crash process left it.
  auto restored_gain = (*restored)->Advance("rand");
  auto reference_gain = (*reference)->Advance("rand");
  ASSERT_TRUE(restored_gain.ok()) << restored_gain.status();
  ASSERT_TRUE(reference_gain.ok());
  EXPECT_EQ(*restored_gain, *reference_gain);
  auto restored_after = (*restored)->GetRound("rand", 4);
  auto reference_after = (*reference)->GetRound("rand", 4);
  ASSERT_TRUE(restored_after.ok());
  ASSERT_TRUE(reference_after.ok());
  EXPECT_EQ(*restored_after, *reference_after);
}

TEST_F(ServeJournalTest, TornFinalLineIsHealedByTruncation) {
  {
    auto manager = CohortManager::Open(DiskOptions());
    ASSERT_TRUE(manager.ok()) << manager.status();
    RunChurnySchedule(**manager);
  }
  const std::string path = JournalPath("rand");
  auto intact = util::ReadFileToString(path);
  ASSERT_TRUE(intact.ok());
  // Simulate a crash mid-append: a half-written op with no newline.
  ASSERT_TRUE(util::WriteFileAtomic(path, *intact + "{\"op\":\"adv").ok());

  auto restored = CohortManager::Open(DiskOptions());
  ASSERT_TRUE(restored.ok()) << restored.status();
  auto summary = (*restored)->GetSummary("rand");
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->rounds, 4);
  // The torn tail is gone from disk (not just skipped), so the journal is
  // clean for the next appender.
  auto healed = util::ReadFileToString(path);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*healed, *intact);
  // And the healed journal accepts new ops.
  ASSERT_TRUE((*restored)->Advance("rand").ok());
}

TEST_F(ServeJournalTest, CorruptMiddleLineIsRefused) {
  {
    auto manager = CohortManager::Open(DiskOptions());
    ASSERT_TRUE(manager.ok()) << manager.status();
    RunChurnySchedule(**manager);
  }
  const std::string path = JournalPath("rand");
  auto intact = util::ReadFileToString(path);
  ASSERT_TRUE(intact.ok());
  // Flip bytes in the middle of the file (inside some op line) — this is
  // real corruption, not a torn append, and must not be silently skipped.
  std::string corrupt = *intact;
  corrupt[corrupt.size() / 2] = '\x01';
  ASSERT_TRUE(util::WriteFileAtomic(path, corrupt).ok());

  auto restored = CohortManager::Open(DiskOptions());
  EXPECT_FALSE(restored.ok());
}

TEST_F(ServeJournalTest, ForeignDigestIsRefused) {
  {
    auto manager = CohortManager::Open(DiskOptions());
    ASSERT_TRUE(manager.ok()) << manager.status();
    ASSERT_TRUE(
        manager.value()
            ->Enroll("star", StarConfig(2), MakeParticipants(4))
            .ok());
  }
  const std::string path = JournalPath("star");
  auto intact = util::ReadFileToString(path);
  ASSERT_TRUE(intact.ok());
  // Tamper with the config in the header without refreshing the digest —
  // as an edited file or a different build would.
  std::string tampered = *intact;
  const std::string needle = "\"group_size\":2";
  const size_t at = tampered.find(needle);
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, needle.size(), "\"group_size\":3");
  ASSERT_TRUE(util::WriteFileAtomic(path, tampered).ok());

  auto restored = CohortManager::Open(DiskOptions());
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST_F(ServeJournalTest, DuplicateEnrollAndUnknownCohortAreErrors) {
  auto manager = CohortManager::Open(DiskOptions());
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE(manager.value()
                  ->Enroll("star", StarConfig(2), MakeParticipants(4))
                  .ok());
  EXPECT_EQ(manager.value()
                ->Enroll("star", StarConfig(2), MakeParticipants(4))
                .code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ((*manager)->Advance("ghost").status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ((*manager)->GetRound("star", 0).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ((*manager)->CohortIds(), std::vector<std::string>({"star"}));
}

}  // namespace
}  // namespace tdg::serve
