#include "core/process.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dygroups.h"

namespace tdg {
namespace {

SkillVector ToySkills() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
}

std::vector<double> SortedDesc(std::vector<double> v) {
  std::sort(v.begin(), v.end(), std::greater<>());
  return v;
}

// Paper §III-A: DyGroups-Star on the toy example, 3 rounds, r = 0.5.
// Total learning gain 2.55; final skills (as a multiset)
// {0.9, 0.8, 0.8, 0.85, 0.825, 0.75, 0.7375, 0.70, 0.6875}.
TEST(ProcessTest, PaperToyExampleStarGolden) {
  DyGroupsStarPolicy policy;
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 3;
  config.num_rounds = 3;
  config.mode = InteractionMode::kStar;

  auto result = RunProcess(ToySkills(), config, gain, policy);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_gain, 2.55, 1e-12);

  std::vector<double> expected = SortedDesc(
      {0.9, 0.8, 0.8, 0.85, 0.825, 0.75, 0.7375, 0.70, 0.6875});
  std::vector<double> actual = SortedDesc(result->final_skills);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-12) << "rank " << i;
  }

  // Intermediate snapshots from the paper.
  ASSERT_EQ(result->history.size(), 3u);
  std::vector<double> after_round1 = SortedDesc(result->history[0].skills_after);
  std::vector<double> paper_round1 =
      SortedDesc({0.9, 0.8, 0.7, 0.75, 0.7, 0.6, 0.55, 0.45, 0.4});
  for (size_t i = 0; i < paper_round1.size(); ++i) {
    EXPECT_NEAR(after_round1[i], paper_round1[i], 1e-12);
  }
  std::vector<double> after_round2 = SortedDesc(result->history[1].skills_after);
  std::vector<double> paper_round2 =
      SortedDesc({0.9, 0.8, 0.75, 0.8, 0.8, 0.7, 0.675, 0.6, 0.575});
  for (size_t i = 0; i < paper_round2.size(); ++i) {
    EXPECT_NEAR(after_round2[i], paper_round2[i], 1e-12);
  }
}

// Paper §III-B: DyGroups-Clique on the toy example, 3 rounds, r = 0.5.
// Total learning gain 2.334375; final multiset
// {0.9, 0.825, 0.8, 0.8, 0.7625, 0.7375, 0.73125, 0.66875, 0.609375}.
TEST(ProcessTest, PaperToyExampleCliqueGolden) {
  DyGroupsCliquePolicy policy;
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 3;
  config.num_rounds = 3;
  config.mode = InteractionMode::kClique;

  auto result = RunProcess(ToySkills(), config, gain, policy);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_gain, 2.334375, 1e-12);

  std::vector<double> expected = SortedDesc({0.9, 0.825, 0.8, 0.8, 0.7625,
                                             0.7375, 0.73125, 0.66875,
                                             0.609375});
  std::vector<double> actual = SortedDesc(result->final_skills);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-12) << "rank " << i;
  }

  ASSERT_EQ(result->history.size(), 3u);
  std::vector<double> after_round1 = SortedDesc(result->history[0].skills_after);
  std::vector<double> paper_round1 = SortedDesc(
      {0.9, 0.8, 0.75, 0.7, 0.65, 0.55, 0.525, 0.425, 0.325});
  for (size_t i = 0; i < paper_round1.size(); ++i) {
    EXPECT_NEAR(after_round1[i], paper_round1[i], 1e-12);
  }
}

// The paper's "arbitrary locally optimal grouping" trace reaches only 2.4 —
// strictly below DyGroups-Star's 2.55. Reproduce it with a scripted policy.
class ScriptedPolicy final : public GroupingPolicy {
 public:
  explicit ScriptedPolicy(std::vector<Grouping> script)
      : script_(std::move(script)) {}

  util::StatusOr<Grouping> FormGroups(const SkillVector& skills,
                                      int num_groups) override {
    (void)skills;
    (void)num_groups;
    if (next_ >= script_.size()) {
      return util::Status::FailedPrecondition("script exhausted");
    }
    return script_[next_++];
  }
  std::string_view name() const override { return "Scripted"; }

 private:
  std::vector<Grouping> script_;
  size_t next_ = 0;
};

TEST(ProcessTest, PaperArbitraryLocalOptimumTrailsDyGroups) {
  // Participant i has skill (i+1)/10. Round-1 groups from the paper:
  // [0.9,0.1,0.2], [0.8,0.3,0.4], [0.7,0.5,0.6].
  std::vector<Grouping> script;
  script.push_back(Grouping({{8, 0, 1}, {7, 2, 3}, {6, 4, 5}}));
  // Round 2 (paper): [0.9,0.55,0.5],[0.8,0.6,0.55],[0.7,0.65,0.6].
  // Skills after round 1 by id:
  //   id: 0->0.5, 1->0.55, 2->0.55, 3->0.6, 4->0.6, 5->0.65, 6->0.7,
  //       7->0.8, 8->0.9
  // The paper's groups map to ids {8,1,0}(0.9,0.55,0.5), {7,4,2} picking the
  // 0.6 from id 4 and 0.55 from id 2, {6,5,3}.
  script.push_back(Grouping({{8, 1, 0}, {7, 4, 2}, {6, 5, 3}}));
  // Round 3 (paper): [0.9,0.675,0.65],[0.8,0.7,0.675],[0.725,0.7,0.7].
  // Skills after round 2 by id:
  //   0 -> 0.5+0.5*0.4 = 0.7,  1 -> 0.55+0.5*0.35 = 0.725,
  //   2 -> 0.55+0.5*0.25 = 0.675, 3 -> 0.6+0.5*0.1 = 0.65,
  //   4 -> 0.6+0.5*0.2 = 0.7,  5 -> 0.65+0.5*0.05 = 0.675,
  //   6 -> 0.7, 7 -> 0.8, 8 -> 0.9.
  // Paper groups map to ids {8,2,3}, {7,0,5}, {1,4,6}.
  script.push_back(Grouping({{8, 2, 3}, {7, 0, 5}, {1, 4, 6}}));

  ScriptedPolicy policy(std::move(script));
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 3;
  config.num_rounds = 3;
  config.mode = InteractionMode::kStar;

  auto result = RunProcess(ToySkills(), config, gain, policy);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_gain, 2.4, 1e-12);
}

TEST(ProcessTest, RoundGainsSumToTotal) {
  DyGroupsStarPolicy policy;
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 3;
  config.num_rounds = 5;
  auto result = RunProcess(ToySkills(), config, gain, policy);
  ASSERT_TRUE(result.ok());
  double sum = 0;
  for (double g : result->round_gains) sum += g;
  EXPECT_NEAR(sum, result->total_gain, 1e-12);
  EXPECT_NEAR(result->total_gain,
              AggregateGain(result->initial_skills, result->final_skills),
              1e-12);
}

TEST(ProcessTest, HistoryCanBeDisabled) {
  DyGroupsStarPolicy policy;
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 3;
  config.num_rounds = 2;
  config.record_history = false;
  auto result = RunProcess(ToySkills(), config, gain, policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->history.empty());
  EXPECT_EQ(result->round_gains.size(), 2u);
}

TEST(ProcessTest, ZeroRoundsIsIdentity) {
  DyGroupsStarPolicy policy;
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 3;
  config.num_rounds = 0;
  auto result = RunProcess(ToySkills(), config, gain, policy);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_gain, 0.0);
  EXPECT_EQ(result->final_skills, ToySkills());
}

TEST(ProcessTest, RejectsInvalidConfig) {
  DyGroupsStarPolicy policy;
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 2;  // 9 % 2 != 0
  EXPECT_FALSE(RunProcess(ToySkills(), config, gain, policy).ok());
  config.num_groups = 3;
  config.num_rounds = -1;
  EXPECT_FALSE(RunProcess(ToySkills(), config, gain, policy).ok());
}

TEST(ProcessTest, RejectsPolicyReturningBadGrouping) {
  class BadPolicy final : public GroupingPolicy {
   public:
    util::StatusOr<Grouping> FormGroups(const SkillVector& skills,
                                        int num_groups) override {
      (void)skills;
      (void)num_groups;
      return Grouping({{0, 1, 2, 3, 4, 5}, {6, 7, 8}});  // not equi-sized
    }
    std::string_view name() const override { return "Bad"; }
  };
  BadPolicy policy;
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 3;
  EXPECT_FALSE(RunProcess(ToySkills(), config, gain, policy).ok());
}

}  // namespace
}  // namespace tdg
