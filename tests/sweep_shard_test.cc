// Unit tests for the crash-safe sweep execution layer (exp/sweep_shard.h):
// checkpoint write/read round-trips, resume semantics, the digest fatal
// path, failure-path semantics of corrupt checkpoints, and the headline
// contract — shards merged with MergeSweepCheckpoints are byte-identical
// to the uninterrupted monolithic RunSweep across 1/2/8 worker threads.

#include "exp/sweep_shard.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "sweep_shard_test_util.h"
#include "util/file_util.h"

namespace tdg::exp {
namespace {

using test::CsvBytes;
using test::JsonBytes;
using test::MakeScratchDir;
using test::MetricsOffGuard;
using test::TinyConfig;

class SweepShardTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeScratchDir(); }

  std::string CheckpointPath(int shard_index) const {
    return dir_ + "/shard" + std::to_string(shard_index) + ".ckpt";
  }

  // Runs every shard to completion, returning the checkpoint paths.
  std::vector<std::string> RunAllShards(const SweepConfig& config,
                                        int shard_count) {
    std::vector<std::string> paths;
    for (int shard = 0; shard < shard_count; ++shard) {
      SweepShardOptions options;
      options.shard_index = shard;
      options.shard_count = shard_count;
      options.checkpoint_path = CheckpointPath(shard);
      auto result = RunSweepShard(config, options);
      EXPECT_TRUE(result.ok()) << result.status();
      paths.push_back(options.checkpoint_path);
    }
    return paths;
  }

  MetricsOffGuard metrics_off_;
  std::string dir_;
};

TEST_F(SweepShardTest, MergedShardsMatchMonolithBytesAcrossThreadCounts) {
  auto reference = RunSweep(TinyConfig(1));
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string reference_csv = CsvBytes(reference.value());
  const std::string reference_json = JsonBytes(reference.value());

  for (int threads : {1, 2, 8}) {
    for (int shard_count : {1, 2, 3}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " shards=" + std::to_string(shard_count));
      SweepConfig config = TinyConfig(threads);
      dir_ = MakeScratchDir();  // fresh checkpoints per combination
      std::vector<std::string> paths = RunAllShards(config, shard_count);
      auto merged = MergeSweepCheckpoints(paths);
      ASSERT_TRUE(merged.ok()) << merged.status();
      EXPECT_EQ(CsvBytes(merged.value()), reference_csv);
      EXPECT_EQ(JsonBytes(merged.value()), reference_json);
    }
  }
}

TEST_F(SweepShardTest, SingleShardResultEqualsMonolith) {
  auto reference = RunSweep(TinyConfig(1));
  ASSERT_TRUE(reference.ok()) << reference.status();
  SweepShardOptions options;
  options.checkpoint_path = CheckpointPath(0);
  auto shard = RunSweepShard(TinyConfig(1), options);
  ASSERT_TRUE(shard.ok()) << shard.status();
  EXPECT_EQ(CsvBytes(shard->result), CsvBytes(reference.value()));
  EXPECT_EQ(JsonBytes(shard->result), JsonBytes(reference.value()));
}

TEST_F(SweepShardTest, CheckpointRoundTripsThroughReader) {
  SweepConfig config = TinyConfig(1);
  RunAllShards(config, 2);
  auto checkpoint = ReadSweepCheckpoint(CheckpointPath(0));
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_EQ(checkpoint->header.schema, kSweepCheckpointSchema);
  EXPECT_EQ(checkpoint->header.name, config.name);
  EXPECT_EQ(checkpoint->header.digest, SweepDigest(config));
  EXPECT_EQ(checkpoint->header.shard_index, 0);
  EXPECT_EQ(checkpoint->header.shard_count, 2);
  EXPECT_EQ(checkpoint->header.cells_total, 16);
  EXPECT_EQ(checkpoint->cells.size(), 8u);
  EXPECT_FALSE(checkpoint->torn_tail_dropped);
  for (const SweepCheckpointCell& record : checkpoint->cells) {
    const CellSeeds seeds =
        SeedsForCell(config.seed, record.cell_index,
                     config.policies.size());
    EXPECT_EQ(record.point_seed, seeds.point_seed);
    EXPECT_EQ(record.policy_seed, seeds.policy_seed);
    EXPECT_EQ(static_cast<int>(record.run_gains.size()),
              record.cell.runs);
  }
}

TEST_F(SweepShardTest, DigestIgnoresThreadsButNotSeedOrGrid) {
  const std::string base = SweepDigest(TinyConfig(1));
  EXPECT_EQ(SweepDigest(TinyConfig(8)), base);
  SweepConfig reseeded = TinyConfig(1);
  reseeded.seed = 8;
  EXPECT_NE(SweepDigest(reseeded), base);
  SweepConfig regridded = TinyConfig(1);
  regridded.n_values = {12};
  EXPECT_NE(SweepDigest(regridded), base);
}

TEST_F(SweepShardTest, ResumeOfCompleteShardRunsNothing) {
  SweepConfig config = TinyConfig(2);
  SweepShardOptions options;
  options.shard_index = 0;
  options.shard_count = 2;
  options.checkpoint_path = CheckpointPath(0);
  auto first = RunSweepShard(config, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->cells_run, 8);

  options.resume = true;
  auto second = RunSweepShard(config, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->cells_restored, 8);
  EXPECT_EQ(second->cells_run, 0);
  EXPECT_EQ(CsvBytes(second->result), CsvBytes(first->result));
}

TEST_F(SweepShardTest, ResumeRerunsOnlyDroppedCellsEvenWithNewThreadCount) {
  SweepConfig config = TinyConfig(1);
  SweepShardOptions options;
  options.checkpoint_path = CheckpointPath(0);
  auto full = RunSweepShard(config, options);
  ASSERT_TRUE(full.ok()) << full.status();

  // Drop the last two complete records (simulating a crash after cell 14).
  auto content = util::ReadFileToString(options.checkpoint_path);
  ASSERT_TRUE(content.ok());
  std::string text = content.value();
  for (int i = 0; i < 2; ++i) {
    text.erase(text.find_last_of('\n', text.size() - 2) + 1);
  }
  ASSERT_TRUE(util::WriteFileAtomic(options.checkpoint_path, text).ok());

  config.threads = 8;  // thread count is not part of the identity digest
  options.resume = true;
  auto resumed = RunSweepShard(config, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->cells_restored, 14);
  EXPECT_EQ(resumed->cells_run, 2);
  EXPECT_EQ(CsvBytes(resumed->result), CsvBytes(full->result));
  EXPECT_EQ(JsonBytes(resumed->result), JsonBytes(full->result));
}

TEST_F(SweepShardTest, ExistingCheckpointWithoutResumeIsRefused) {
  SweepConfig config = TinyConfig(1);
  SweepShardOptions options;
  options.checkpoint_path = CheckpointPath(0);
  ASSERT_TRUE(RunSweepShard(config, options).ok());
  auto again = RunSweepShard(config, options);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(SweepShardTest, MissingCheckpointPathIsInvalid) {
  auto result = RunSweepShard(TinyConfig(1), SweepShardOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SweepShardTest, ResumeUnderDifferentShardGeometryIsRefused) {
  SweepConfig config = TinyConfig(1);
  SweepShardOptions options;
  options.shard_index = 0;
  options.shard_count = 2;
  options.checkpoint_path = CheckpointPath(0);
  ASSERT_TRUE(RunSweepShard(config, options).ok());
  options.shard_count = 4;
  options.resume = true;
  auto result = RunSweepShard(config, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(SweepShardTest, MidFileCorruptionIsAHardError) {
  SweepConfig config = TinyConfig(1);
  SweepShardOptions options;
  options.checkpoint_path = CheckpointPath(0);
  ASSERT_TRUE(RunSweepShard(config, options).ok());

  // Overwrite the second line (first cell record) with newline-terminated
  // garbage. That cannot come from a torn append — it is corruption.
  auto content = util::ReadFileToString(options.checkpoint_path);
  ASSERT_TRUE(content.ok());
  std::string text = content.value();
  const size_t first_newline = text.find('\n');
  const size_t second_newline = text.find('\n', first_newline + 1);
  text.replace(first_newline + 1, second_newline - first_newline - 1,
               "{not json!");
  ASSERT_TRUE(util::WriteFileAtomic(options.checkpoint_path, text).ok());

  auto checkpoint = ReadSweepCheckpoint(options.checkpoint_path);
  ASSERT_FALSE(checkpoint.ok());
  EXPECT_NE(checkpoint.status().message().find("malformed"),
            std::string::npos)
      << checkpoint.status();
}

TEST_F(SweepShardTest, DuplicateCellRecordIsAHardError) {
  SweepConfig config = TinyConfig(1);
  SweepShardOptions options;
  options.checkpoint_path = CheckpointPath(0);
  ASSERT_TRUE(RunSweepShard(config, options).ok());

  auto content = util::ReadFileToString(options.checkpoint_path);
  ASSERT_TRUE(content.ok());
  std::string text = content.value();
  const size_t first_newline = text.find('\n');
  const size_t second_newline = text.find('\n', first_newline + 1);
  // Re-append the first cell record verbatim.
  text += text.substr(first_newline + 1,
                      second_newline - first_newline);
  ASSERT_TRUE(util::WriteFileAtomic(options.checkpoint_path, text).ok());

  auto checkpoint = ReadSweepCheckpoint(options.checkpoint_path);
  ASSERT_FALSE(checkpoint.ok());
  EXPECT_NE(checkpoint.status().message().find("duplicate"),
            std::string::npos)
      << checkpoint.status();
}

TEST_F(SweepShardTest, MergeRefusesIncompleteCoverage) {
  SweepConfig config = TinyConfig(1);
  RunAllShards(config, 2);
  auto merged = MergeSweepCheckpoints({CheckpointPath(0)});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_NE(merged.status().message().find("missing"), std::string::npos)
      << merged.status();
}

TEST_F(SweepShardTest, MergeRefusesOverlappingShards) {
  SweepConfig config = TinyConfig(1);
  std::vector<std::string> paths = RunAllShards(config, 2);
  auto merged =
      MergeSweepCheckpoints({paths[0], paths[1], paths[0]});
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("more than one checkpoint"),
            std::string::npos)
      << merged.status();
}

TEST_F(SweepShardTest, TornHeaderDegeneratesToFreshStart) {
  // A crash can land before even the header's newline reached disk. The
  // torn header is dropped and the shard starts over — no error, no
  // leftover bytes.
  SweepShardOptions options;
  options.checkpoint_path = CheckpointPath(0);
  std::ofstream out(options.checkpoint_path, std::ios::binary);
  out << "{\"record\":\"header\",\"schema\":\"tdg.swe";  // no newline
  out.close();
  options.resume = true;
  auto result = RunSweepShard(TinyConfig(1), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->cells_restored, 0);
  EXPECT_EQ(result->cells_run, 16);
  EXPECT_TRUE(result->torn_tail_dropped);
  auto checkpoint = ReadSweepCheckpoint(options.checkpoint_path);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_EQ(checkpoint->cells.size(), 16u);
}

using SweepShardDeathTest = SweepShardTest;

TEST_F(SweepShardDeathTest, DigestMismatchOnResumeDiesLoudly) {
  // Resuming the same checkpoint under a different config (here: a
  // different seed — same effect as a rebuilt binary) must abort the
  // process, not quietly mix incomparable cells.
  SweepConfig config = TinyConfig(1);
  SweepShardOptions options;
  options.checkpoint_path = CheckpointPath(0);
  ASSERT_TRUE(RunSweepShard(config, options).ok());

  SweepConfig other = config;
  other.seed = 8;
  options.resume = true;
  EXPECT_DEATH((void)RunSweepShard(other, options),
               "checkpoint digest mismatch");
}

}  // namespace
}  // namespace tdg::exp
