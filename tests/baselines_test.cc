#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/kmeans.h"
#include "baselines/lpa.h"
#include "baselines/percentile_partitions.h"
#include "baselines/random_assignment.h"
#include "baselines/registry.h"
#include "baselines/static_groups.h"
#include "core/dygroups.h"
#include "core/process.h"
#include "random/distributions.h"

namespace tdg::baselines {
namespace {

SkillVector RandomSkills(int n, uint64_t seed) {
  random::Rng rng(seed);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, n);
  return skills;
}

// Every registered policy must produce a valid equi-sized grouping.
TEST(RegistryTest, AllPoliciesProduceValidGroupings) {
  SkillVector skills = RandomSkills(20, 1);
  for (const std::string& name : AllPolicyNames()) {
    auto policy = MakePolicy(name, 7);
    ASSERT_TRUE(policy.ok()) << name;
    auto grouping = (*policy)->FormGroups(skills, 4);
    ASSERT_TRUE(grouping.ok()) << name;
    EXPECT_TRUE(grouping->ValidateEquiSized(20).ok()) << name;
    EXPECT_EQ((*policy)->name(), name);
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto policy = MakePolicy("Simulated-Annealing", 1);
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), util::StatusCode::kNotFound);
}

TEST(RegistryTest, PoliciesRejectBadArguments) {
  SkillVector skills = RandomSkills(10, 2);
  for (const std::string& name : AllPolicyNames()) {
    auto policy = MakePolicy(name, 7);
    ASSERT_TRUE(policy.ok());
    EXPECT_FALSE((*policy)->FormGroups(skills, 3).ok()) << name;  // 10 % 3
    EXPECT_FALSE((*policy)->FormGroups(skills, 0).ok()) << name;
    EXPECT_FALSE((*policy)->FormGroups({}, 1).ok()) << name;
  }
}

TEST(RandomAssignmentTest, SeedDeterminism) {
  SkillVector skills = RandomSkills(12, 3);
  RandomAssignmentPolicy a(5);
  RandomAssignmentPolicy b(5);
  RandomAssignmentPolicy c(6);
  auto ga = a.FormGroups(skills, 3);
  auto gb = b.FormGroups(skills, 3);
  auto gc = c.FormGroups(skills, 3);
  ASSERT_TRUE(ga.ok() && gb.ok() && gc.ok());
  EXPECT_EQ(ga->CanonicalKey(), gb->CanonicalKey());
  EXPECT_NE(ga->CanonicalKey(), gc->CanonicalKey());
}

TEST(RandomAssignmentTest, ProducesVaryingGroupingsAcrossRounds) {
  SkillVector skills = RandomSkills(12, 4);
  RandomAssignmentPolicy policy(9);
  std::set<std::string> keys;
  for (int round = 0; round < 5; ++round) {
    auto g = policy.FormGroups(skills, 3);
    ASSERT_TRUE(g.ok());
    keys.insert(g->CanonicalKey());
  }
  EXPECT_GT(keys.size(), 1u);
}

TEST(KMeansTest, GroupsClusterSimilarSkills) {
  // Two well-separated skill clusters; k-means with k=2 should not mix them
  // (whichever participants seed the centers, nearest-assignment separates
  // the clusters as long as both clusters seed at least one center — run a
  // few seeds and require it to happen for most).
  SkillVector skills = {1.0, 1.1, 1.05, 0.95, 10.0, 10.1, 10.05, 9.95};
  int separated = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    KMeansPolicy policy(seed);
    auto grouping = policy.FormGroups(skills, 2);
    ASSERT_TRUE(grouping.ok());
    for (const auto& group : grouping->groups) {
      bool has_low = false;
      bool has_high = false;
      for (int id : group) {
        (skills[id] < 5.0 ? has_low : has_high) = true;
      }
      if (has_low != has_high) ++separated;  // pure group
    }
  }
  EXPECT_GT(separated, 10);  // more than half of all groups pure
}

TEST(PercentilePartitionsTest, MentorsSpreadAcrossGroups) {
  // n = 8, k = 2, p = 0.75: 2 mentors (top 25%), one per group.
  SkillVector skills = {1, 2, 3, 4, 5, 6, 7, 8};
  PercentilePartitionsPolicy policy(0.75);
  auto grouping = policy.FormGroups(skills, 2);
  ASSERT_TRUE(grouping.ok());
  // Ids 7 (skill 8) and 6 (skill 7) are the mentors; they must be in
  // different groups.
  int group_of_7 = -1;
  int group_of_6 = -1;
  for (int g = 0; g < 2; ++g) {
    for (int id : grouping->groups[g]) {
      if (id == 7) group_of_7 = g;
      if (id == 6) group_of_6 = g;
    }
  }
  EXPECT_NE(group_of_7, group_of_6);
}

TEST(PercentilePartitionsTest, DeterministicAndCapacitySafe) {
  SkillVector skills = RandomSkills(30, 5);
  PercentilePartitionsPolicy policy;  // p = 0.75 default
  auto a = policy.FormGroups(skills, 5);
  auto b = policy.FormGroups(skills, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->CanonicalKey(), b->CanonicalKey());
  // Extreme p still respects capacity: many mentors.
  PercentilePartitionsPolicy low_p(0.1);
  auto g = low_p.FormGroups(skills, 5);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->ValidateEquiSized(30).ok());
}

TEST(LpaTest, TopKAreTeachersAndWeakestJoinStrongestTeacher) {
  SkillVector skills = {1, 2, 3, 4, 5, 6, 7, 8, 9};  // id = skill - 1
  LpaPolicy policy;
  auto grouping = policy.FormGroups(skills, 3);
  ASSERT_TRUE(grouping.ok());
  // Teachers: ids 8, 7, 6 in groups 0, 1, 2. Weakest (id 0, skill 1) picks
  // first and joins the strongest teacher's group (group 0).
  EXPECT_EQ(grouping->groups[0].front(), 8);
  EXPECT_TRUE(std::find(grouping->groups[0].begin(),
                        grouping->groups[0].end(),
                        0) != grouping->groups[0].end());
  // LPA is round-optimal for star mode (top-k teachers) but distinct from
  // DyGroups-Star-Local's blocks.
  auto dygroups = DyGroupsStarLocal(skills, 3);
  ASSERT_TRUE(dygroups.ok());
  EXPECT_NE(grouping->CanonicalKey(), dygroups->CanonicalKey());
}

TEST(LpaTest, RoundOptimalForStarMode) {
  SkillVector skills = RandomSkills(8, 6);
  LpaPolicy policy;
  LinearGain gain(0.5);
  auto lpa = policy.FormGroups(skills, 2);
  auto dygroups = DyGroupsStarLocal(skills, 2);
  ASSERT_TRUE(lpa.ok() && dygroups.ok());
  EXPECT_NEAR(
      EvaluateRoundGain(InteractionMode::kStar, lpa.value(), gain, skills)
          .value(),
      EvaluateRoundGain(InteractionMode::kStar, dygroups.value(), gain,
                        skills)
          .value(),
      1e-12);
}

TEST(StaticGroupsTest, CachesFirstGrouping) {
  SkillVector skills = RandomSkills(12, 7);
  StaticGroupsPolicy policy(std::make_unique<DyGroupsStarPolicy>());
  auto first = policy.FormGroups(skills, 3);
  ASSERT_TRUE(first.ok());
  // Different skills, same membership returned.
  SkillVector other = RandomSkills(12, 8);
  auto second = policy.FormGroups(other, 3);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->CanonicalKey(), second->CanonicalKey());
  EXPECT_EQ(policy.name(), "Static(DyGroups-Star)");
}

TEST(StaticGroupsTest, RejectsShapeChangeUntilReset) {
  SkillVector skills = RandomSkills(12, 9);
  StaticGroupsPolicy policy(std::make_unique<DyGroupsStarPolicy>());
  ASSERT_TRUE(policy.FormGroups(skills, 3).ok());
  EXPECT_FALSE(policy.FormGroups(skills, 4).ok());
  SkillVector bigger = RandomSkills(16, 9);
  EXPECT_FALSE(policy.FormGroups(bigger, 4).ok());
  policy.Reset();
  EXPECT_TRUE(policy.FormGroups(bigger, 4).ok());
}

// The headline hypothesis: over multiple rounds, dynamic re-grouping beats
// keeping the first (even optimally chosen) grouping frozen.
TEST(StaticGroupsTest, DynamicBeatsStaticOverRounds) {
  SkillVector skills = RandomSkills(40, 10);
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 5;
  config.num_rounds = 6;
  config.mode = InteractionMode::kStar;

  DyGroupsStarPolicy dynamic;
  auto dynamic_result = RunProcess(skills, config, gain, dynamic);
  ASSERT_TRUE(dynamic_result.ok());

  StaticGroupsPolicy static_policy(std::make_unique<DyGroupsStarPolicy>());
  auto static_result = RunProcess(skills, config, gain, static_policy);
  ASSERT_TRUE(static_result.ok());

  EXPECT_GT(dynamic_result->total_gain, static_result->total_gain);
}

}  // namespace
}  // namespace tdg::baselines
