// Assorted boundary behaviors across modules that the focused suites do
// not cover.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/percentile_partitions.h"
#include "core/affinity.h"
#include "core/dygroups.h"
#include "core/process.h"
#include "io/series_io.h"
#include "random/distributions.h"
#include "util/csv.h"
#include "util/table_printer.h"

namespace tdg {
namespace {

TEST(EdgeCaseTest, TwoPersonPopulationOneGroup) {
  SkillVector skills = {0.2, 0.8};
  DyGroupsStarPolicy policy;
  LinearGain gain(0.5);
  ProcessConfig config;
  config.num_groups = 1;
  config.num_rounds = 3;
  auto result = RunProcess(skills, config, gain, policy);
  ASSERT_TRUE(result.ok());
  // 0.2 -> 0.5 -> 0.65 -> 0.725; teacher fixed at 0.8.
  EXPECT_NEAR(result->final_skills[0], 0.725, 1e-12);
  EXPECT_NEAR(result->final_skills[1], 0.8, 1e-12);
  EXPECT_NEAR(result->total_gain, 0.525, 1e-12);
}

TEST(EdgeCaseTest, AllEqualSkillsProduceZeroGainEverywhere) {
  SkillVector equal(20, 3.0);
  for (InteractionMode mode :
       {InteractionMode::kStar, InteractionMode::kClique}) {
    auto policy = MakeDyGroupsPolicy(mode);
    LinearGain gain(0.5);
    ProcessConfig config;
    config.num_groups = 4;
    config.num_rounds = 5;
    config.mode = mode;
    auto result = RunProcess(equal, config, gain, *policy);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->total_gain, 0.0);
    EXPECT_EQ(result->final_skills, equal);
  }
}

TEST(EdgeCaseTest, ExtremeLearningRatesBehave) {
  SkillVector skills = {1.0, 9.0};
  Grouping grouping({{0, 1}});
  SkillVector slow = skills;
  LinearGain tiny(1e-9);
  ASSERT_TRUE(
      ApplyRound(InteractionMode::kStar, grouping, tiny, slow).ok());
  EXPECT_NEAR(slow[0], 1.0, 1e-7);

  SkillVector fast = skills;
  LinearGain near_one(0.999999);
  ASSERT_TRUE(
      ApplyRound(InteractionMode::kStar, grouping, near_one, fast).ok());
  EXPECT_NEAR(fast[0], 9.0, 1e-4);
  EXPECT_LE(fast[0], 9.0);  // never overtakes
}

TEST(EdgeCaseTest, PercentilePolicyAtTinyPopulations) {
  // n = k: singleton groups, any p.
  SkillVector skills = {1, 2, 3, 4};
  baselines::PercentilePartitionsPolicy policy(0.75);
  auto grouping = policy.FormGroups(skills, 4);
  ASSERT_TRUE(grouping.ok());
  EXPECT_TRUE(grouping->ValidateEquiSized(4).ok());
}

TEST(EdgeCaseTest, AffinityPolicyWithSingletonGroups) {
  random::Rng rng(1);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 6);
  LinearGain gain(0.5);
  AffinityDyGroupsPolicy policy(InteractionMode::kStar, gain,
                                AffinityMatrix(6), 3);
  auto grouping = policy.FormGroups(skills, 6);  // k = n
  ASSERT_TRUE(grouping.ok());
  EXPECT_TRUE(grouping->ValidateEquiSized(6).ok());
}

TEST(EdgeCaseTest, CsvDocumentWithoutHeaderStillSerializes) {
  util::CsvDocument doc;
  ASSERT_TRUE(doc.AddRow({"a", "b"}).ok());
  ASSERT_TRUE(doc.AddRow({"c"}).ok());  // arity unchecked without header
  EXPECT_EQ(doc.ToString(), "a,b\nc\n");
  EXPECT_FALSE(doc.ColumnIndex("a").ok());
}

TEST(EdgeCaseTest, EmptySeriesAndTablePrint) {
  io::ExperimentSeries series;
  series.x_label = "x";
  EXPECT_EQ(series.ToTable(), "x\n-\n");

  util::TablePrinter table({});
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_FALSE(table.ToString().empty());
}

TEST(EdgeCaseTest, ProcessWithVeryManyRoundsConvergesAndStaysFinite) {
  random::Rng rng(2);
  SkillVector skills =
      random::GenerateSkills(rng, random::SkillDistribution::kLogNormal, 30);
  DyGroupsCliquePolicy policy;
  LinearGain gain(0.9);
  ProcessConfig config;
  config.num_groups = 3;
  config.num_rounds = 500;
  config.mode = InteractionMode::kClique;
  config.record_history = false;
  auto result = RunProcess(skills, config, gain, policy);
  ASSERT_TRUE(result.ok());
  double top = *std::max_element(skills.begin(), skills.end());
  for (double s : result->final_skills) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_LE(s, top + 1e-9);
    EXPECT_NEAR(s, top, 1e-6 * top);
  }
}

}  // namespace
}  // namespace tdg
