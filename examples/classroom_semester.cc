// Classroom scenario (the paper's §I motivation): a programming course with
// repeated group assignments over a semester. Compares keeping fixed groups
// all semester against re-forming them with DyGroups before each
// assignment, under both interaction modes, and shows who benefits.
//
//   build/examples/example_classroom_semester [--students=30]
//       [--group-size=5] [--assignments=6] [--r=0.5] [--seed=7]
//       [--save-roster=roster.csv]

#include <cstdio>
#include <memory>

#include "baselines/static_groups.h"
#include "core/dygroups.h"
#include "core/process.h"
#include "io/population_io.h"
#include "random/distributions.h"
#include "stats/descriptive.h"
#include "stats/inequality.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

double Run(const tdg::SkillVector& skills, tdg::GroupingPolicy& policy,
           tdg::InteractionMode mode, int num_groups, int rounds, double r,
           tdg::SkillVector* final_skills) {
  tdg::LinearGain gain(r);
  tdg::ProcessConfig config;
  config.num_groups = num_groups;
  config.num_rounds = rounds;
  config.mode = mode;
  auto result = tdg::RunProcess(skills, config, gain, policy);
  TDG_CHECK(result.ok()) << result.status();
  if (final_skills != nullptr) *final_skills = result->final_skills;
  return result->total_gain;
}

}  // namespace

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  TDG_CHECK(flags.Parse(argc, argv).ok());
  int students = static_cast<int>(flags.GetInt("students", 30));
  int group_size = static_cast<int>(flags.GetInt("group-size", 5));
  int assignments = static_cast<int>(flags.GetInt("assignments", 6));
  double r = flags.GetDouble("r", 0.5);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  if (students % group_size != 0) {
    std::fprintf(stderr,
                 "students (%d) must be divisible by group-size (%d)\n",
                 students, group_size);
    return 1;
  }
  int num_groups = students / group_size;

  // Incoming class: skills on a 0-100 "placement test" scale.
  tdg::random::Rng rng(seed);
  tdg::SkillVector skills;
  skills.reserve(students);
  for (int i = 0; i < students; ++i) {
    skills.push_back(20.0 + 60.0 * rng.NextDouble());
  }

  std::string roster_path = flags.GetString("save-roster", "");
  if (!roster_path.empty()) {
    auto status = tdg::io::WriteSkills(roster_path, skills);
    TDG_CHECK(status.ok()) << status;
    std::printf("saved incoming roster to %s\n\n", roster_path.c_str());
  }

  std::printf("Semester: %d students, groups of %d, %d group assignments, "
              "r = %.2f\n\n",
              students, group_size, assignments, r);

  tdg::util::TablePrinter table({"strategy", "interaction", "total gain",
                                 "mean final skill", "final Gini"});
  for (tdg::InteractionMode mode :
       {tdg::InteractionMode::kStar, tdg::InteractionMode::kClique}) {
    // Dynamic: re-form groups before every assignment.
    auto dynamic = tdg::MakeDyGroupsPolicy(mode);
    tdg::SkillVector dynamic_final;
    double dynamic_gain = Run(skills, *dynamic, mode, num_groups,
                              assignments, r, &dynamic_final);
    table.AddRow({"dynamic (DyGroups)",
                  std::string(tdg::InteractionModeName(mode)),
                  tdg::util::FormatDouble(dynamic_gain, 1),
                  tdg::util::FormatDouble(tdg::stats::Mean(dynamic_final), 1),
                  tdg::util::FormatDouble(
                      tdg::stats::GiniIndex(dynamic_final), 4)});

    // Static: groups fixed at the first assignment (common practice).
    tdg::baselines::StaticGroupsPolicy static_policy(
        tdg::MakeDyGroupsPolicy(mode));
    tdg::SkillVector static_final;
    double static_gain = Run(skills, static_policy, mode, num_groups,
                             assignments, r, &static_final);
    table.AddRow({"static (fixed groups)",
                  std::string(tdg::InteractionModeName(mode)),
                  tdg::util::FormatDouble(static_gain, 1),
                  tdg::util::FormatDouble(tdg::stats::Mean(static_final), 1),
                  tdg::util::FormatDouble(
                      tdg::stats::GiniIndex(static_final), 4)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nTakeaway: re-forming groups each assignment lets every "
              "student eventually learn\nfrom the strongest peers — the "
              "dynamic rows dominate their static counterparts.\n");
  return 0;
}
