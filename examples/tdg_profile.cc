// tdg_profile — per-kernel attribution viewer over tdg.bench_report.v2
// artifacts recorded under --profile (see DESIGN.md §10).
//
//   tdg_profile --report=BENCH.json [--case=<substr>] [--digits=2]
//       [--check]
//
// Reads the "perf/<domain>/<event>" counters that the profiling plane
// attributes to every instrumented kernel (self time: a domain never
// includes its nested callees) plus the per-repetition "perf/total/<event>"
// series that ScopedBenchRep records around each repetition, and renders a
// table: per-domain cycle share (task-clock share under the rusage
// fallback), IPC, cache-miss rate, branch misses per kilo-instruction and
// task-clock time. The "(unattributed)" row is the remainder of the totals
// not covered by any instrumented kernel (setup, allocation, harness).
//
//   --case=<substr>  Restrict the aggregation to cases whose key contains
//                    the substring (default: all cases).
//   --check          Exit 1 unless the attributed share of the basis event
//                    is <= ~100% (self-time accounting sanity gate; used by
//                    ci/check.sh profile). Requires recorded totals.
//
// Exit codes: 0 = ok, 1 = --check failed, 2 = usage or input error.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

struct DomainStats {
  double calls = 0;
  std::map<std::string, double> events;  // event name -> summed delta
};

// Splits "perf/<domain>/<event>" (domain may itself contain slashes) into
// its domain and trailing event segment. Returns false for anything else.
bool SplitPerfCounter(const std::string& name, std::string* domain,
                      std::string* event) {
  constexpr size_t kPrefixLen = 5;  // "perf/"
  if (name.rfind("perf/", 0) != 0) return false;
  size_t split = name.rfind('/');
  if (split <= kPrefixLen || split + 1 >= name.size()) return false;
  *domain = name.substr(kPrefixLen, split - kPrefixLen);
  *event = name.substr(split + 1);
  return true;
}

std::string FormatOr(double value, int digits, bool available) {
  return available ? tdg::util::FormatDouble(value, digits) : "-";
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tdg_profile --report=<report.json> [--case=<substr>]\n"
               "      [--digits=2] [--check]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  auto parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "tdg_profile: %s\n", parsed.ToString().c_str());
    return Usage();
  }
  const std::string report_path = flags.GetString("report", "");
  if (report_path.empty()) return Usage();
  const std::string case_filter = flags.GetString("case", "");
  const int digits = static_cast<int>(flags.GetInt("digits", 2));
  const bool check = flags.GetBool("check", false);

  auto report = tdg::obs::BenchReport::ReadFile(report_path);
  if (!report.ok()) {
    std::fprintf(stderr, "tdg_profile: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  auto valid = report->Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "tdg_profile: %s: %s\n", report_path.c_str(),
                 valid.ToString().c_str());
    return 2;
  }

  // Aggregate the per-domain counters and the per-rep totals over every
  // matching case. std::map keeps the rendering deterministic.
  std::map<std::string, DomainStats> domains;
  std::map<std::string, double> totals;
  size_t matched = 0;
  for (const tdg::obs::BenchCase& bench_case : report->cases) {
    if (!case_filter.empty() &&
        bench_case.key.find(case_filter) == std::string::npos) {
      continue;
    }
    ++matched;
    for (const auto& [name, value] : bench_case.counters) {
      std::string domain, event;
      if (!SplitPerfCounter(name, &domain, &event)) continue;
      if (domain == "total") continue;
      DomainStats& stats = domains[domain];
      if (event == "calls") {
        stats.calls += value;
      } else {
        stats.events[event] += value;
      }
    }
    for (const auto& [series, samples] : bench_case.counter_series) {
      std::string domain, event;
      if (!SplitPerfCounter(series, &domain, &event)) continue;
      if (domain != "total") continue;
      for (double v : samples) totals[event] += v;
    }
  }
  if (matched == 0) {
    std::fprintf(stderr, "tdg_profile: no case matches --case=%s (of %zu)\n",
                 case_filter.c_str(), report->cases.size());
    return 2;
  }
  if (report->perf_backend.empty() || (domains.empty() && totals.empty())) {
    std::fprintf(stderr,
                 "tdg_profile: %s carries no profiling data; re-run the "
                 "bench with --profile (or TDG_PROFILE=1)\n",
                 report_path.c_str());
    return 2;
  }

  // Attribution basis: real cycles under the perf_event backend, thread CPU
  // time under the rusage fallback (where hardware events are unavailable).
  const bool hardware = report->perf_backend == "perf_event";
  const std::string basis = hardware ? "cycles" : "task_clock_ns";
  const double total_basis =
      totals.count(basis) != 0 ? totals.at(basis) : 0.0;

  std::printf("report: %s (bench \"%s\", %zu/%zu cases, backend %s)\n",
              report_path.c_str(), report->bench_name.c_str(), matched,
              report->cases.size(), report->perf_backend.c_str());
  std::printf("attribution basis: %s (self time per domain)\n\n",
              hardware ? "cycles" : "task-clock");

  tdg::util::TablePrinter table({"domain", "calls",
                                 hardware ? "cycles%" : "clock%", "IPC",
                                 "cache-miss%", "br-miss/kI",
                                 "task-clock ms"});
  double attributed_basis = 0.0;
  double attributed_clock_ns = 0.0;
  for (const auto& [name, stats] : domains) {
    auto event_or = [&stats = stats](const char* event) {
      auto it = stats.events.find(event);
      return it != stats.events.end() ? it->second : 0.0;
    };
    const double cycles = event_or("cycles");
    const double instructions = event_or("instructions");
    const double cache_refs = event_or("cache_references");
    const double cache_misses = event_or("cache_misses");
    const double branch_misses = event_or("branch_misses");
    const double clock_ns = event_or("task_clock_ns");
    const double domain_basis = hardware ? cycles : clock_ns;
    attributed_basis += domain_basis;
    attributed_clock_ns += clock_ns;
    table.AddRow(
        {name, std::to_string(static_cast<long long>(stats.calls)),
         FormatOr(total_basis > 0 ? 100.0 * domain_basis / total_basis : 0.0,
                  digits, total_basis > 0),
         FormatOr(cycles > 0 ? instructions / cycles : 0.0, digits,
                  hardware && cycles > 0),
         FormatOr(cache_refs > 0 ? 100.0 * cache_misses / cache_refs : 0.0,
                  digits, hardware && cache_refs > 0),
         FormatOr(
             instructions > 0 ? 1000.0 * branch_misses / instructions : 0.0,
             digits, hardware && instructions > 0),
         FormatOr(clock_ns / 1e6, digits, clock_ns > 0)});
  }
  if (total_basis > 0) {
    const double unattributed = total_basis - attributed_basis;
    const double total_clock_ns =
        totals.count("task_clock_ns") != 0 ? totals.at("task_clock_ns") : 0.0;
    const double unattributed_clock_ns = total_clock_ns - attributed_clock_ns;
    table.AddRow({"(unattributed)", "-",
                  tdg::util::FormatDouble(100.0 * unattributed / total_basis,
                                          digits),
                  "-", "-", "-",
                  FormatOr(unattributed_clock_ns / 1e6, digits,
                           total_clock_ns > 0)});
  }
  std::printf("%s", table.ToString().c_str());

  if (check) {
    if (total_basis <= 0) {
      std::fprintf(stderr,
                   "tdg_profile --check: no 'perf/total/%s' series in the "
                   "report (profiling was off, or a v1 artifact)\n",
                   basis.c_str());
      return 1;
    }
    const double share = 100.0 * attributed_basis / total_basis;
    // Self-time accounting means kernels can never claim more than the
    // whole; allow a hair of slack for counter-read ordering.
    if (share > 100.1) {
      std::fprintf(stderr,
                   "tdg_profile --check FAILED: attributed %s share %.2f%% "
                   "exceeds 100%%\n",
                   basis.c_str(), share);
      return 1;
    }
    std::printf("\ncheck ok: kernels account for %.2f%% of %s\n", share,
                basis.c_str());
  }
  return 0;
}
