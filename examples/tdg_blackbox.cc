// tdg_blackbox — decoder for flight-recorder dumps (tdg.blackbox.v1, see
// DESIGN.md §12).
//
//   tdg_blackbox DUMP.bin                 summary + tail of the timeline
//   tdg_blackbox --jsonl DUMP.bin         every event as JSONL on stdout
//   tdg_blackbox --jsonl=OUT DUMP.bin     ... written to OUT
//   tdg_blackbox --trace=OUT DUMP.bin     Chrome trace_event JSON (load in
//                                         chrome://tracing / Perfetto)
//   tdg_blackbox --tail=N DUMP.bin        rows in the summary tail
//   tdg_blackbox --trace_id=ID DUMP.bin   narrow any mode above to one
//                                         served request: its request_
//                                         start/phase/end records plus
//                                         everything its thread recorded
//                                         while the request ran (e.g. the
//                                         cohort_round the core emitted)
//
// The dump is written through a shared file mapping, so it is current even
// when the recording process died by kill -9 — a dump without the
// clean-shutdown flag is the black box of a crash. Decoding is
// torn-write-tolerant: records failing their magic check are counted
// (`torn`) and skipped, never trusted.
//
// Exit codes: 0 = decoded, 2 = usage or undecodable input.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "util/file_util.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

using tdg::obs::BlackboxDump;
using tdg::obs::BlackboxEvent;
using tdg::obs::BlackboxEventName;
using tdg::obs::BlackboxEventToJson;
using tdg::obs::BlackboxEventType;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tdg_blackbox [--jsonl[=OUT]] [--trace=OUT] [--tail=N] "
               "[--trace_id=ID] DUMP.bin\n");
  return 2;
}

bool IsRequestEvent(const BlackboxEvent& event) {
  return event.type == BlackboxEventType::kRequestStart ||
         event.type == BlackboxEventType::kRequestPhase ||
         event.type == BlackboxEventType::kRequestEnd;
}

// Narrows the dump to one request's causal path: the request_start/phase/
// end records carrying `trace_id` plus every event the same thread
// recorded inside the request's [start, end] window — which is where the
// core's cohort_round / cohort_churn records land, since the serving plane
// runs a request start-to-finish on one worker thread.
void FilterTraceId(BlackboxDump* dump, unsigned long long trace_id) {
  bool have_window = false;
  std::int64_t window_begin = 0;
  std::int64_t window_end = 0;
  std::uint32_t request_tid = 0;
  for (const BlackboxEvent& event : dump->events) {
    if (!IsRequestEvent(event) ||
        static_cast<unsigned long long>(event.values[0]) != trace_id) {
      continue;
    }
    if (!have_window) {
      have_window = true;
      window_begin = event.ts_micros;
      request_tid = event.tid;
    }
    if (event.ts_micros < window_begin) window_begin = event.ts_micros;
    if (event.ts_micros > window_end) window_end = event.ts_micros;
  }
  std::vector<BlackboxEvent> kept;
  for (const BlackboxEvent& event : dump->events) {
    const bool owns_id =
        IsRequestEvent(event) &&
        static_cast<unsigned long long>(event.values[0]) == trace_id;
    const bool in_thread_window =
        have_window && !IsRequestEvent(event) && event.tid == request_tid &&
        event.ts_micros >= window_begin && event.ts_micros <= window_end;
    if (owns_id || in_thread_window) kept.push_back(event);
  }
  dump->events = std::move(kept);
}

std::string EventsJsonl(const BlackboxDump& dump) {
  std::string out;
  for (const BlackboxEvent& event : dump.events) {
    out += BlackboxEventToJson(event).Serialize();
    out += '\n';
  }
  return out;
}

// Chrome trace_event JSON: sweep cells become duration (B/E) slices per
// thread, everything else an instant event carrying its decoded fields.
std::string EventsChromeTrace(const BlackboxDump& dump) {
  std::string out = "[";
  bool first = true;
  for (const BlackboxEvent& event : dump.events) {
    const std::string_view name = BlackboxEventName(event.type);
    const char* phase = "i";
    if (event.type == BlackboxEventType::kSweepCellStart) phase = "B";
    if (event.type == BlackboxEventType::kSweepCellEnd) phase = "E";
    // Served requests render as duration slices too, named by trace id so
    // one request's span lines up with the instants it encloses.
    if (event.type == BlackboxEventType::kRequestStart) phase = "B";
    if (event.type == BlackboxEventType::kRequestEnd) phase = "E";
    std::string label(name.empty() ? "unknown" : name);
    if (event.type == BlackboxEventType::kSweepCellStart ||
        event.type == BlackboxEventType::kSweepCellEnd) {
      label = tdg::util::StrFormat("cell %lld",
                                   static_cast<long long>(event.values[0]));
    }
    if (event.type == BlackboxEventType::kRequestStart ||
        event.type == BlackboxEventType::kRequestEnd) {
      label = tdg::util::StrFormat("req %lld",
                                   static_cast<long long>(event.values[0]));
    }
    if (!first) out += ",";
    first = false;
    out += tdg::util::StrFormat(
        "\n{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%lld,\"pid\":1,"
        "\"tid\":%u",
        label.c_str(), phase, static_cast<long long>(event.ts_micros),
        event.tid);
    if (phase[0] == 'i') out += ",\"s\":\"t\"";
    out += tdg::util::StrFormat(
        ",\"args\":%s}", BlackboxEventToJson(event).Serialize().c_str());
  }
  out += "\n]\n";
  return out;
}

void PrintSummary(const std::string& path, const BlackboxDump& dump,
                  int tail) {
  std::printf("blackbox %s\n", path.c_str());
  std::printf("  shutdown:    %s\n",
              dump.clean_shutdown ? "clean" : "CRASH (no clean-shutdown "
                                             "flag)");
  std::printf("  rings:       %d claimed of %d (%zu bytes each)\n",
              dump.rings_claimed, dump.max_rings, dump.ring_bytes);
  std::printf("  events:      %zu decoded, %llu overwritten, %llu torn, "
              "%llu dropped\n",
              dump.events.size(),
              static_cast<unsigned long long>(dump.overwritten),
              static_cast<unsigned long long>(dump.torn),
              static_cast<unsigned long long>(dump.dropped));
  if (dump.events.empty()) return;
  const std::size_t n = dump.events.size();
  const std::size_t from =
      tail > 0 && static_cast<std::size_t>(tail) < n
          ? n - static_cast<std::size_t>(tail)
          : 0;
  std::printf("  last %zu events:\n", n - from);
  for (std::size_t i = from; i < n; ++i) {
    std::printf("    %s\n",
                BlackboxEventToJson(dump.events[i]).Serialize().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return Usage();
  std::string jsonl = flags.GetString("jsonl", "");
  std::string path;
  if (flags.positional().size() == 1) {
    path = flags.positional()[0];
  } else if (flags.positional().empty() && !jsonl.empty() &&
             jsonl != "true" && jsonl != "-") {
    // "--jsonl DUMP.bin": the flag parser took the dump path as the flag's
    // value — that spelling means JSONL to stdout.
    path = jsonl;
    jsonl = "true";
  } else {
    return Usage();
  }
  const bool jsonl_stdout = jsonl == "true" || jsonl == "-";
  if (jsonl_stdout) jsonl.clear();
  const std::string trace = flags.GetString("trace", "");
  const int tail = static_cast<int>(flags.GetInt("tail", 20));

  auto dump = tdg::obs::ReadBlackbox(path);
  if (!dump.ok()) {
    std::fprintf(stderr, "tdg_blackbox: %s\n",
                 dump.status().ToString().c_str());
    return 2;
  }
  const long long trace_id = flags.GetInt("trace_id", 0);
  if (trace_id != 0) {
    FilterTraceId(&dump.value(),
                  static_cast<unsigned long long>(trace_id));
  }

  bool emitted = false;
  if (jsonl_stdout) {
    std::fputs(EventsJsonl(dump.value()).c_str(), stdout);
    emitted = true;
  } else if (!jsonl.empty()) {
    auto status = tdg::util::WriteFileAtomic(jsonl, EventsJsonl(dump.value()));
    if (!status.ok()) {
      std::fprintf(stderr, "tdg_blackbox: %s\n", status.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote %zu events to %s\n",
                 dump->events.size(), jsonl.c_str());
    emitted = true;
  }
  if (!trace.empty()) {
    auto status =
        tdg::util::WriteFileAtomic(trace, EventsChromeTrace(dump.value()));
    if (!status.ok()) {
      std::fprintf(stderr, "tdg_blackbox: %s\n", status.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "wrote chrome trace to %s\n", trace.c_str());
    emitted = true;
  }
  if (!emitted) PrintSummary(path, dump.value(), tail);
  return 0;
}
