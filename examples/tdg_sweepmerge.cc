// tdg_sweepmerge — folds N shard checkpoints (tdg.sweep_checkpoint.v1,
// written by `example_tdg_cli sweep --checkpoint=... --shard_index=...` or
// exp::RunSweepShard) into the CSV/JSON the monolithic sweep would have
// produced, byte for byte.
//
//   tdg_sweepmerge [--csv=<out.csv>] [--json=<out.json>] [--table]
//                  <shard0.ckpt> [<shard1.ckpt> ...]
//
// Exit codes: 0 merged cleanly; 1 the checkpoints are inconsistent
// (digest/coverage/duplicates) or an output could not be written; 2 usage.
//
// A torn final record in a shard file (crash mid-append) is tolerated at
// read time but surfaces as a missing cell — resume that shard to
// completion first. Checkpoints from different binaries or configs refuse
// to merge (digest check, DESIGN.md §8).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exp/sweep_shard.h"
#include "util/flags.h"
#include "util/status.h"

namespace {

int Fail(const tdg::util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  auto parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) return Fail(parse_status);
  const std::vector<std::string>& paths = flags.positional();
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: tdg_sweepmerge [--csv=<out.csv>] "
                 "[--json=<out.json>] [--table] <shard0.ckpt> "
                 "[<shard1.ckpt> ...]\n");
    return 2;
  }

  auto merged = tdg::exp::MergeSweepCheckpoints(paths);
  if (!merged.ok()) return Fail(merged.status());
  std::printf("merged %zu checkpoint(s): sweep '%s', %zu cells\n",
              paths.size(), merged->name.c_str(), merged->cells.size());

  if (flags.GetBool("table", false)) {
    std::printf("\n%s", merged->ToTable().c_str());
  }
  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    auto status = merged->ToCsv().WriteToFile(csv_path);
    if (!status.ok()) return Fail(status);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      return Fail(tdg::util::Status::IOError("cannot open " + json_path));
    }
    out << merged->ToJson().SerializePretty() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
