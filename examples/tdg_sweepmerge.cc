// tdg_sweepmerge — folds N shard checkpoints (tdg.sweep_checkpoint.v1,
// written by `example_tdg_cli sweep --checkpoint=... --shard_index=...` or
// exp::RunSweepShard) into the CSV/JSON the monolithic sweep would have
// produced, byte for byte.
//
//   tdg_sweepmerge [--csv=<out.csv>] [--json=<out.json>] [--table]
//                  <shard0.ckpt> [<shard1.ckpt> ...]
//
// Watch mode — live fleet progress from the shards' heartbeat files
// (tdg.heartbeat.v1, written next to each checkpoint by
// `example_tdg_cli sweep --heartbeat`; see DESIGN.md §9):
//
//   tdg_sweepmerge --watch [--watch_interval_ms=2000]
//                  [--watch_iterations=0] [--stale_after_ms=10000]
//                  <shard0.ckpt> [<shard1.ckpt> ...]
//
// Renders a per-shard progress / straggler table (state: running | done |
// stale | torn | missing) plus a fleet totals/ETA footer, refreshing every
// --watch_interval_ms until every shard is done (or --watch_iterations > 0
// rounds have printed — handy for scripts). Positional arguments are
// checkpoint paths; each shard's heartbeat is read from
// <checkpoint>.heartbeat (a path already ending in .heartbeat is used
// as-is). Read-only: never blocks or perturbs the shards.
//
// Exit codes: 0 merged cleanly (or watch finished); 1 the checkpoints are
// inconsistent (digest/coverage/duplicates) or an output could not be
// written; 2 usage.
//
// A torn final record in a shard file (crash mid-append) is tolerated at
// read time but surfaces as a missing cell — resume that shard to
// completion first. Checkpoints from different binaries or configs refuse
// to merge (digest check, DESIGN.md §8).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/sweep_shard.h"
#include "obs/heartbeat.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/string_util.h"

namespace {

int Fail(const tdg::util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Watch(const std::vector<std::string>& paths,
          const tdg::util::FlagParser& flags) {
  std::vector<std::string> heartbeat_paths;
  heartbeat_paths.reserve(paths.size());
  for (const std::string& path : paths) {
    heartbeat_paths.push_back(tdg::util::EndsWith(path, ".heartbeat")
                                  ? path
                                  : path + ".heartbeat");
  }
  const long long interval_ms = flags.GetInt("watch_interval_ms", 2000);
  const long long max_iterations = flags.GetInt("watch_iterations", 0);
  const long long stale_after_ms = flags.GetInt("stale_after_ms", 10000);
  for (long long iteration = 1;; ++iteration) {
    const std::vector<tdg::obs::HeartbeatStatus> fleet =
        tdg::obs::CollectHeartbeats(heartbeat_paths, tdg::obs::UnixMillis(),
                                    stale_after_ms);
    std::printf("%s", tdg::obs::RenderHeartbeatTable(fleet).c_str());
    std::fflush(stdout);
    bool all_done = true;
    for (const tdg::obs::HeartbeatStatus& status : fleet) {
      all_done = all_done && status.state == "done";
    }
    if (all_done) {
      std::printf("all %zu shard(s) done — merge with: tdg_sweepmerge "
                  "--csv=... <checkpoints...>\n",
                  fleet.size());
      return 0;
    }
    if (max_iterations > 0 && iteration >= max_iterations) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --watch and --table are switches that naturally precede the positional
  // checkpoint paths; rewrite the bare forms to `=true` so FlagParser's
  // `--name value` rule cannot swallow the first path as a flag value.
  std::vector<std::string> args(argv, argv + argc);
  for (std::string& arg : args) {
    if (arg == "--watch" || arg == "--table") arg += "=true";
  }
  std::vector<const char*> arg_ptrs;
  arg_ptrs.reserve(args.size());
  for (const std::string& arg : args) arg_ptrs.push_back(arg.c_str());

  tdg::util::FlagParser flags;
  auto parse_status = flags.Parse(argc, arg_ptrs.data());
  if (!parse_status.ok()) return Fail(parse_status);
  const std::vector<std::string>& paths = flags.positional();
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: tdg_sweepmerge [--csv=<out.csv>] "
                 "[--json=<out.json>] [--table] <shard0.ckpt> "
                 "[<shard1.ckpt> ...]\n"
                 "       tdg_sweepmerge --watch "
                 "[--watch_interval_ms=MS] [--watch_iterations=N] "
                 "[--stale_after_ms=MS] <shard0.ckpt> ...\n");
    return 2;
  }
  if (flags.GetBool("watch", false)) return Watch(paths, flags);

  auto merged = tdg::exp::MergeSweepCheckpoints(paths);
  if (!merged.ok()) return Fail(merged.status());
  std::printf("merged %zu checkpoint(s): sweep '%s', %zu cells\n",
              paths.size(), merged->name.c_str(), merged->cells.size());

  if (flags.GetBool("table", false)) {
    std::printf("\n%s", merged->ToTable().c_str());
  }
  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    auto status = merged->ToCsv().WriteToFile(csv_path);
    if (!status.ok()) return Fail(status);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  const std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      return Fail(tdg::util::Status::IOError("cannot open " + json_path));
    }
    out << merged->ToJson().SerializePretty() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
