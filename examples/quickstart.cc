// Quickstart: the 60-second tour of the tdg library.
//
//   build/examples/example_quickstart
//
// Forms dynamic peer-learning groups for the paper's toy classroom (9
// students, 3 groups, learning rate 0.5) with DyGroups-Star, runs 3 rounds,
// and prints the per-round groupings and gains.

#include <cstdio>

#include "core/dygroups.h"
#include "core/process.h"

int main() {
  // 1. A population: one positive skill per participant.
  tdg::SkillVector skills = {0.1, 0.2, 0.3, 0.4, 0.5,
                             0.6, 0.7, 0.8, 0.9};

  // 2. A learning-gain function: linear f(Δ) = rΔ with r = 0.5.
  tdg::LinearGain gain(0.5);

  // 3. A grouping policy: DyGroups-Star (Algorithm 2 of the paper).
  tdg::DyGroupsStarPolicy policy;

  // 4. Run the α-round process (Algorithm 1).
  tdg::ProcessConfig config;
  config.num_groups = 3;                        // k
  config.num_rounds = 3;                        // α
  config.mode = tdg::InteractionMode::kStar;    // who learns from whom

  auto result = tdg::RunProcess(skills, config, gain, policy);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 5. Inspect the outcome.
  for (size_t t = 0; t < result->history.size(); ++t) {
    const tdg::RoundRecord& round = result->history[t];
    std::printf("round %zu: grouping %s, learning gain %.4f\n", t + 1,
                round.grouping.ToString().c_str(), round.gain);
  }
  std::printf("total learning gain over %d rounds: %.4f\n",
              config.num_rounds, result->total_gain);
  std::printf("final skills:");
  for (double s : result->final_skills) std::printf(" %.4f", s);
  std::printf("\n");
  return 0;
}
