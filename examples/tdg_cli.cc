// tdg command-line driver — the "downstream user" front end over the whole
// library. Subcommands:
//
//   example_tdg_cli policies
//       List the registered grouping policies.
//
//   example_tdg_cli run [--policy=DyGroups-Star] [--n=10000] [--k=5]
//                       [--alpha=5] [--r=0.5] [--mode=star]
//                       [--distribution=log-normal] [--seed=42]
//       Run one α-round process and print per-round gains.
//
//   example_tdg_cli sweep --config=<file> [--csv=<out.csv>]
//                         [--json=<out.json>]
//                         [--checkpoint=<file>] [--resume]
//                         [--shard_index=<i> --shard_count=<s>]
//       Run a declarative sweep (see config-template) and print the grid.
//       With --checkpoint, execution is crash-safe: every completed cell
//       is appended (fsync'd) to the tdg.sweep_checkpoint.v1 JSONL file,
//       and --resume replays it, re-running only the missing tail.
//       --shard_index/--shard_count run one deterministic slice of the
//       grid; merge the N shard checkpoints back into the monolithic
//       CSV/JSON with `tdg_sweepmerge` (byte-identical to an
//       uninterrupted single-process run).
//
//   example_tdg_cli config-template
//       Print a commented sweep config to adapt.
//
//   example_tdg_cli exact [--n=8] [--k=2] [--alpha=3] [--r=0.5]
//                         [--mode=star] [--seed=1] [--solver_threads=1]
//       Solve a small TDG instance exactly (branch & bound) and compare
//       with DyGroups. --solver_threads > 1 runs the work-stealing
//       parallel search (bitwise-identical optimum, see DESIGN.md).
//
//   example_tdg_cli human-sim [--experiment=1|2] [--seed=42]
//       Run a simulated AMT deployment (see amt_crowdsourcing example).
//
// Observability flags (valid with every command):
//
//   --trace_out=<file>     Record tdg::obs trace spans for the whole run and
//                          write them as Chrome trace-event JSON (open in
//                          chrome://tracing or https://ui.perfetto.dev).
//   --metrics_out=<file>   Write a JSON snapshot of the tdg::obs metrics
//                          registry (counters / gauges / histograms with
//                          p50/p95/p99) at the end of the run.
//   --print_metrics        Print the end-of-run metrics table to stdout
//                          (implied by --metrics_out).
//   --events_out=<file>    Stream structured JSONL progress events (sweep
//                          start/cell/end, run provenance) for the whole
//                          run; summarize with `tdg_perfdiff --events=`.
//   --manifest_out=<file>  Write the run's provenance manifest
//                          (tdg.run_manifest.v1: git sha, compiler, host,
//                          seed, args) as JSON.
//   --no_metrics           Disable the tdg::obs metrics registry at
//                          runtime. Sweep outputs then report
//                          mean_micros=0, making CSV/JSON byte-comparable
//                          across runs (used by ci/check.sh crash-resume).
//   --profile              Enable kernel-level profiling (equivalent to
//                          TDG_PROFILE=1): hardware perf counters (or the
//                          rusage fallback — see DESIGN.md §10) are read
//                          around every instrumented kernel and attributed
//                          per domain as perf/<domain>/<event> counters in
//                          --metrics_out and /metrics. Pure observation:
//                          sweep outputs stay byte-identical.
//
// Live monitoring flags (valid with every command; see DESIGN.md §9):
//
//   --stats_port=<port>    Serve /metrics (Prometheus text exposition),
//                          /statusz, /progressz and /healthz over HTTP on
//                          127.0.0.1:<port> for the duration of the run.
//                          Port 0 binds an ephemeral port. Off by default;
//                          pure observation — outputs are byte-identical
//                          with and without the server.
//   --stats_port_file=<f>  Write the bound port (atomic replace) so
//                          scripts can discover an ephemeral --stats_port=0.
//   --progress             Echo a throttled single-line sweep progress /
//                          ETA report to stderr.
//   --heartbeat            (sweep with --checkpoint) Atomically rewrite
//                          <checkpoint>.heartbeat (tdg.heartbeat.v1 JSON)
//                          every --heartbeat_period_ms=<ms> [default 1000]
//                          so `tdg_sweepmerge --watch` can track the fleet.
//                          With --stats_port, /healthz folds the heartbeat
//                          in: stale or torn beats degrade it to HTTP 503.
//
// Flight recorder (valid with every command; see DESIGN.md §12):
//
//   --blackbox=<file>      Record the always-on flight recorder into <file>
//                          (tdg.blackbox.v1): per-thread ring buffers of
//                          semantic events — round objectives, group churn,
//                          per-group gain summaries, policy decisions,
//                          sweep cell boundaries, solver incumbents. The
//                          dump is a shared file mapping, so it survives
//                          kill -9; decode with `tdg_blackbox`, or tail it
//                          live at /blackboxz when --stats_port is up. Bare
//                          --blackbox (sweep with --checkpoint) defaults to
//                          <checkpoint>.blackbox.

#include <cstdio>
#include <fstream>

#include "baselines/registry.h"
#include "core/branch_bound.h"
#include "core/dygroups.h"
#include "core/process.h"
#include "exp/sweep.h"
#include "exp/sweep_shard.h"
#include "obs/obs.h"
#include "random/distributions.h"
#include "sim/amt_experiment.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

int Fail(const tdg::util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdPolicies() {
  std::printf("registered grouping policies:\n");
  for (const std::string& name : tdg::baselines::AllPolicyNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

int CmdRun(const tdg::util::FlagParser& flags) {
  std::string policy_name = flags.GetString("policy", "DyGroups-Star");
  int n = static_cast<int>(flags.GetInt("n", 10000));
  int k = static_cast<int>(flags.GetInt("k", 5));
  int alpha = static_cast<int>(flags.GetInt("alpha", 5));
  double r = flags.GetDouble("r", 0.5);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  auto mode = tdg::ParseInteractionMode(flags.GetString("mode", "star"));
  if (!mode.ok()) return Fail(mode.status());
  auto distribution = tdg::random::ParseSkillDistribution(
      flags.GetString("distribution", "log-normal"));
  if (!distribution.ok()) return Fail(distribution.status());
  auto policy = tdg::baselines::MakePolicy(policy_name, seed);
  if (!policy.ok()) return Fail(policy.status());
  auto gain = tdg::LinearGain::Create(r);
  if (!gain.ok()) return Fail(gain.status());

  tdg::random::Rng rng(seed);
  tdg::SkillVector skills =
      tdg::random::GenerateSkills(rng, distribution.value(), n);
  for (double& s : skills) s += 1e-9;

  tdg::ProcessConfig config;
  config.num_groups = k;
  config.num_rounds = alpha;
  config.mode = mode.value();
  config.record_history = false;
  tdg::util::Stopwatch stopwatch;
  auto result = tdg::RunProcess(skills, config, gain.value(), **policy);
  if (!result.ok()) return Fail(result.status());

  std::printf("%s on n=%d, k=%d, alpha=%d, r=%g, %s mode, %s skills\n",
              policy_name.c_str(), n, k, alpha, r,
              std::string(tdg::InteractionModeName(mode.value())).c_str(),
              std::string(
                  tdg::random::SkillDistributionName(distribution.value()))
                  .c_str());
  for (size_t t = 0; t < result->round_gains.size(); ++t) {
    std::printf("  round %2zu gain: %.4f\n", t + 1, result->round_gains[t]);
  }
  std::printf("total gain: %.4f   (%.2f ms)\n", result->total_gain,
              stopwatch.ElapsedMillis());
  return 0;
}

int WriteSweepOutputs(const tdg::exp::SweepResult& result,
                      const tdg::util::FlagParser& flags) {
  std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    auto status = result.ToCsv().WriteToFile(csv_path);
    if (!status.ok()) return Fail(status);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  std::string json_path = flags.GetString("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      return Fail(tdg::util::Status::IOError("cannot open " + json_path));
    }
    out << result.ToJson().SerializePretty() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

int CmdSweep(const tdg::util::FlagParser& flags) {
  std::string config_path = flags.GetString("config", "");
  tdg::util::StatusOr<tdg::exp::SweepConfig> config =
      config_path.empty()
          ? tdg::util::StatusOr<tdg::exp::SweepConfig>(
                tdg::exp::SweepConfig{})
          : tdg::exp::SweepConfig::FromFile(config_path);
  if (!config.ok()) return Fail(config.status());
  if (config_path.empty()) {
    std::printf("(no --config given; running the default paper grid)\n");
  }

  tdg::exp::SweepShardOptions shard;
  shard.shard_index = static_cast<int>(flags.GetInt("shard_index", 0));
  shard.shard_count = static_cast<int>(flags.GetInt("shard_count", 1));
  shard.checkpoint_path = flags.GetString("checkpoint", "");
  shard.resume = flags.GetBool("resume", false);
  if (shard.shard_count > 1 && shard.checkpoint_path.empty()) {
    return Fail(tdg::util::Status::InvalidArgument(
        "--shard_count > 1 requires --checkpoint (each shard must persist "
        "its cells for tdg_sweepmerge)"));
  }
  if (flags.GetBool("heartbeat", false)) {
    if (shard.checkpoint_path.empty()) {
      return Fail(tdg::util::Status::InvalidArgument(
          "--heartbeat requires --checkpoint (the heartbeat file lives "
          "next to it as <checkpoint>.heartbeat)"));
    }
    shard.heartbeat_path = shard.checkpoint_path + ".heartbeat";
    shard.heartbeat_period_ms =
        static_cast<int>(flags.GetInt("heartbeat_period_ms", 1000));
  }

  if (!shard.checkpoint_path.empty()) {
    // Crash-safe path: one fsync'd checkpoint record per completed cell.
    auto result = tdg::exp::RunSweepShard(config.value(), shard);
    if (!result.ok()) return Fail(result.status());
    std::printf(
        "sweep '%s' shard %d/%d: %zu cells (%d restored from checkpoint, "
        "%d run)%s\n",
        result->result.name.c_str(), shard.shard_index, shard.shard_count,
        result->result.cells.size(), result->cells_restored,
        result->cells_run,
        result->torn_tail_dropped ? " [torn final record re-run]" : "");
    if (shard.shard_count == 1) {
      std::printf("\n%s", result->result.ToTable().c_str());
      return WriteSweepOutputs(result->result, flags);
    }
    std::printf(
        "merge the shard checkpoints into CSV/JSON with: tdg_sweepmerge "
        "<checkpoints...>\n");
    return 0;
  }

  auto result = tdg::exp::RunSweep(config.value());
  if (!result.ok()) return Fail(result.status());
  std::printf("sweep '%s': %zu cells\n\n", result->name.c_str(),
              result->cells.size());
  std::printf("%s", result->ToTable().c_str());
  return WriteSweepOutputs(result.value(), flags);
}

int CmdConfigTemplate() {
  tdg::exp::SweepConfig config;
  config.name = "my-sweep";
  std::printf("# tdg sweep configuration (pass via: sweep --config=FILE)\n");
  std::printf("# lists are comma-separated; every (n, k) must divide\n");
  std::printf("%s", config.ToText().c_str());
  return 0;
}

int CmdExact(const tdg::util::FlagParser& flags) {
  int n = static_cast<int>(flags.GetInt("n", 8));
  int k = static_cast<int>(flags.GetInt("k", 2));
  int alpha = static_cast<int>(flags.GetInt("alpha", 3));
  double r = flags.GetDouble("r", 0.5);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  int solver_threads =
      static_cast<int>(flags.GetInt("solver_threads", 1));
  auto mode = tdg::ParseInteractionMode(flags.GetString("mode", "star"));
  if (!mode.ok()) return Fail(mode.status());

  tdg::random::Rng rng(seed);
  tdg::SkillVector skills = tdg::random::GenerateSkills(
      rng, tdg::random::SkillDistribution::kUniform, n);
  for (double& s : skills) s += 1e-9;
  auto gain = tdg::LinearGain::Create(r);
  if (!gain.ok()) return Fail(gain.status());

  tdg::BranchBoundOptions solver_options;
  solver_options.num_threads = solver_threads;
  auto exact = tdg::SolveTdgBranchBound(skills, k, alpha, mode.value(),
                                        gain.value(), solver_options);
  if (!exact.ok()) return Fail(exact.status());

  auto policy = tdg::MakeDyGroupsPolicy(mode.value());
  tdg::ProcessConfig config;
  config.num_groups = k;
  config.num_rounds = alpha;
  config.mode = mode.value();
  auto greedy = tdg::RunProcess(skills, config, gain.value(), *policy);
  if (!greedy.ok()) return Fail(greedy.status());

  std::printf(
      "exact optimum : %.6f (%lld nodes, %lld pruned, %d thread%s, "
      "%lld subtree tasks, %lld steals)\n",
      exact->best_total_gain, exact->nodes_explored, exact->nodes_pruned,
      exact->threads_used, exact->threads_used == 1 ? "" : "s",
      exact->subtree_tasks, exact->steal_count);
  std::printf("DyGroups      : %.6f (%s)\n", greedy->total_gain,
              greedy->total_gain >= exact->best_total_gain - 1e-9
                  ? "optimal"
                  : "suboptimal");
  std::printf("optimal round-1 grouping: %s\n",
              exact->best_sequence.empty()
                  ? "(none)"
                  : exact->best_sequence.front().ToString().c_str());
  return 0;
}

int CmdHumanSim(const tdg::util::FlagParser& flags) {
  int experiment = static_cast<int>(flags.GetInt("experiment", 1));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  tdg::sim::ExperimentConfig config =
      (experiment == 2) ? tdg::sim::Experiment2Config(seed)
                        : tdg::sim::Experiment1Config(seed);
  auto result = tdg::sim::RunExperiment(config);
  if (!result.ok()) return Fail(result.status());

  tdg::util::TablePrinter table(
      {"population", "pre-test mean", "total gain", "final retention"});
  for (const auto& population : result->populations) {
    double retention = population.rounds.empty()
                           ? 1.0
                           : population.rounds.back().retention_fraction;
    table.AddRow({population.policy_name,
                  tdg::util::FormatDouble(population.pre_qualification_mean,
                                          3),
                  tdg::util::FormatDouble(population.total_observed_gain, 3),
                  tdg::util::FormatDouble(retention, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

void PrintUsage() {
  std::printf(
      "usage: example_tdg_cli <command> [flags]\n"
      "commands: policies | run | sweep | config-template | exact | "
      "human-sim\n"
      "observability (any command): --trace_out=<file> --metrics_out=<file> "
      "--print_metrics --events_out=<file> --manifest_out=<file> "
      "--no_metrics --profile\n"
      "live monitoring (any command): --stats_port=<port|0> "
      "--stats_port_file=<file> --progress; sweep: --heartbeat "
      "[--heartbeat_period_ms=MS]\n"
      "flight recorder (any command): --blackbox=<file> (or bare "
      "--blackbox next to a sweep --checkpoint); decode with "
      "tdg_blackbox\n"
      "crash-safe sweeps: sweep --checkpoint=<file> [--resume] "
      "[--shard_index=I --shard_count=S]; merge with tdg_sweepmerge\n"
      "see the header comment of examples/tdg_cli.cc for per-command "
      "flags\n");
}

int Dispatch(const std::string& command, const tdg::util::FlagParser& flags) {
  if (command == "policies") return CmdPolicies();
  if (command == "run") return CmdRun(flags);
  if (command == "sweep") return CmdSweep(flags);
  if (command == "config-template") return CmdConfigTemplate();
  if (command == "exact") return CmdExact(flags);
  if (command == "human-sim") return CmdHumanSim(flags);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  PrintUsage();
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  auto parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) return Fail(parse_status);
  if (flags.positional().empty()) {
    PrintUsage();
    return 1;
  }
  const std::string trace_out = flags.GetString("trace_out", "");
  const std::string metrics_out = flags.GetString("metrics_out", "");
  const std::string events_out = flags.GetString("events_out", "");
  const std::string manifest_out = flags.GetString("manifest_out", "");
  const bool print_metrics =
      flags.GetBool("print_metrics", false) || !metrics_out.empty();
  if (flags.GetBool("no_metrics", false)) {
    tdg::obs::SetMetricsEnabled(false);
  }
  if (flags.GetBool("profile", false)) {
    tdg::obs::SetProfilingEnabled(true);
  }
  // Flight recorder (black box, DESIGN.md §12). Bare --blackbox puts the
  // dump next to the sweep checkpoint; --blackbox=<file> works with every
  // command. Recording survives kill -9: the dump is a shared file
  // mapping, decoded post-mortem with tdg_blackbox.
  std::string blackbox = flags.GetString("blackbox", "");
  if (!blackbox.empty()) {
    if (blackbox == "true") {  // bare --blackbox
      const std::string checkpoint = flags.GetString("checkpoint", "");
      if (checkpoint.empty()) {
        return Fail(tdg::util::Status::InvalidArgument(
            "--blackbox without a path requires --checkpoint (the dump "
            "lives next to it as <checkpoint>.blackbox); otherwise pass "
            "--blackbox=<file>"));
      }
      blackbox = checkpoint + ".blackbox";
    }
    tdg::obs::FlightRecorder::Options recorder_options;
    recorder_options.path = blackbox;
    auto status =
        tdg::obs::FlightRecorder::Global().Start(recorder_options);
    if (!status.ok()) return Fail(status);
  }
  if (!trace_out.empty()) tdg::obs::StartTracing();
  if (!events_out.empty()) {
    auto status = tdg::obs::EventLog::Global().Open(events_out);
    if (!status.ok()) return Fail(status);
    TDG_OBS_EVENT("cli/start",
                  (tdg::util::JsonValue::Object{
                      {"command", flags.positional().front()},
                  }));
  }

  // Live monitoring plane. All of it observes only — outputs are
  // byte-identical with and without these flags.
  tdg::obs::InstallBuildInfoMetrics();
  const int stats_port = static_cast<int>(flags.GetInt("stats_port", -1));
  const bool progress = flags.GetBool("progress", false);
  if (progress || stats_port >= 0) {
    tdg::obs::ProgressTracker::Global().SetEnabled(true);
    tdg::obs::ProgressTracker::Global().SetStderrReport(progress);
  }
  std::unique_ptr<tdg::obs::StatsServer> stats_server;
  if (stats_port >= 0) {
    tdg::obs::StatsServer::Options server_options;
    server_options.port = stats_port;
    server_options.port_file = flags.GetString("stats_port_file", "");
    server_options.manifest = tdg::obs::RunManifest::Capture(
        static_cast<uint64_t>(flags.GetInt("seed", 42)), argc, argv);
    // Fold the sweep heartbeat (written next to the checkpoint, see
    // CmdSweep) into /healthz so the probe degrades when the worker
    // stops making progress, not just when the process dies.
    const std::string checkpoint = flags.GetString("checkpoint", "");
    if (flags.GetBool("heartbeat", false) && !checkpoint.empty()) {
      server_options.heartbeat_paths.push_back(checkpoint + ".heartbeat");
    }
    server_options.blackbox_path = blackbox;  // "" → global recorder path
    auto server = tdg::obs::StatsServer::Start(std::move(server_options));
    if (!server.ok()) return Fail(server.status());
    stats_server = std::move(server).value();
    std::fprintf(stderr,
                 "stats server listening on http://127.0.0.1:%d "
                 "(/healthz /metrics /statusz /progressz /blackboxz)\n",
                 stats_server->port());
  }

  int exit_code = Dispatch(flags.positional().front(), flags);

  if (stats_server != nullptr) stats_server->Stop();

  if (!blackbox.empty()) {
    tdg::obs::FlightRecorder::Global().Stop();
    std::printf("wrote flight recorder black box to %s (decode with "
                "tdg_blackbox)\n",
                blackbox.c_str());
  }

  if (!manifest_out.empty()) {
    const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    tdg::obs::RunManifest manifest =
        tdg::obs::RunManifest::Capture(seed, argc, argv);
    std::ofstream out(manifest_out, std::ios::trunc);
    if (!out) {
      return Fail(tdg::util::Status::IOError("cannot open " + manifest_out));
    }
    out << manifest.ToJson().SerializePretty() << "\n";
    std::printf("wrote manifest to %s\n", manifest_out.c_str());
  }
  if (!events_out.empty()) {
    TDG_OBS_EVENT("cli/end", (tdg::util::JsonValue::Object{
                                 {"exit_code", exit_code},
                             }));
    tdg::obs::EventLog& log = tdg::obs::EventLog::Global();
    const long long events = log.events_written();
    log.Close();
    std::printf("wrote %lld events to %s\n", events, events_out.c_str());
  }

  if (!trace_out.empty()) {
    tdg::obs::StopTracing();
    auto status = tdg::obs::WriteTraceFile(trace_out);
    if (!status.ok()) return Fail(status);
    std::printf("wrote trace to %s (%zu events)\n", trace_out.c_str(),
                tdg::obs::CollectTraceEvents().size());
  }
  if (print_metrics) {
    std::printf("\n== tdg::obs metrics ==\n%s",
                tdg::obs::MetricsRegistry::Global().Snapshot().ToTable().c_str());
  }
  if (!metrics_out.empty()) {
    auto status = tdg::obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) return Fail(status);
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  return exit_code;
}
