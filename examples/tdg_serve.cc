// tdg_serve — the grouping-as-a-service daemon (DESIGN.md §13): a
// long-lived cohort server over serve::CohortManager + serve::CohortServer.
//
//   tdg_serve --state_dir=DIR [--port=P] [--port_file=F] [--workers=N]
//             [--blackbox=DUMP.bin] [--no_metrics]
//             [--slow_micros=T] [--slow_sample_n=N]
//
// --slow_micros sets the /slowz tail-sampling threshold (default 100000 =
// 100 ms; 0 keeps every request); --slow_sample_n keeps every Nth request
// regardless of latency (default 64, 0 disables the sample leg).
//
// Binds 127.0.0.1 only. --port=0 (the default) picks an ephemeral port;
// scripts discover it through --port_file. --state_dir enables the
// write-ahead journals: every acknowledged enroll/join/leave/advance is
// fsync'd before it is applied, so a `kill -9` (the CI e2e does exactly
// that) loses nothing — restarting with the same --state_dir replays the
// journals back to the acknowledged state, bit for bit. Omitting
// --state_dir serves from memory only.
//
// SIGINT/SIGTERM shut down cleanly (drain in-flight requests, mark the
// blackbox dump clean). Exit codes: 0 = clean shutdown, 2 = startup error.

#include <csignal>
#include <cstdio>
#include <thread>

#include "obs/obs.h"
#include "serve/cohort_manager.h"
#include "serve/cohort_server.h"
#include "util/flags.h"

namespace {

std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) {
    std::fprintf(stderr,
                 "usage: tdg_serve --state_dir=DIR [--port=P] "
                 "[--port_file=F] [--workers=N] [--blackbox=DUMP.bin] "
                 "[--no_metrics] [--slow_micros=T] [--slow_sample_n=N]\n");
    return 2;
  }
  if (flags.GetBool("no_metrics", false)) {
    tdg::obs::SetMetricsEnabled(false);
  }
  const std::string blackbox = flags.GetString("blackbox", "");
  if (!blackbox.empty()) {
    tdg::obs::FlightRecorder::Options options;
    options.path = blackbox;
    auto started = tdg::obs::FlightRecorder::Global().Start(options);
    if (!started.ok()) {
      std::fprintf(stderr, "tdg_serve: blackbox: %s\n",
                   started.ToString().c_str());
      return 2;
    }
  }
  tdg::obs::InstallBuildInfoMetrics();

  tdg::serve::CohortManager::Options manager_options;
  manager_options.state_dir = flags.GetString("state_dir", "");
  auto manager = tdg::serve::CohortManager::Open(manager_options);
  if (!manager.ok()) {
    std::fprintf(stderr, "tdg_serve: %s\n",
                 manager.status().ToString().c_str());
    return 2;
  }

  tdg::serve::CohortServer::Options server_options;
  server_options.port = static_cast<int>(flags.GetInt("port", 0));
  server_options.port_file = flags.GetString("port_file", "");
  server_options.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  server_options.tail.slow_threshold_micros =
      flags.GetInt("slow_micros", server_options.tail.slow_threshold_micros);
  server_options.tail.sample_every = static_cast<int>(
      flags.GetInt("slow_sample_n", server_options.tail.sample_every));
  auto server =
      tdg::serve::CohortServer::Start(manager->get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "tdg_serve: %s\n",
                 server.status().ToString().c_str());
    return 2;
  }
  std::fprintf(stderr,
               "tdg_serve: listening on 127.0.0.1:%d (%d cohorts restored, "
               "%d workers, state_dir=%s)\n",
               (*server)->port(), (*manager)->restored_cohorts(),
               server_options.num_workers,
               manager_options.state_dir.empty()
                   ? "<memory only>"
                   : manager_options.state_dir.c_str());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "tdg_serve: shutting down\n");
  (*server)->Stop();
  tdg::obs::FlightRecorder::Global().Stop();
  return 0;
}
