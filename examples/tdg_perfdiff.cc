// Statistically-gated perf regression detector over tdg.bench_report.v1/v2
// artifacts (the --report_out output of every bench binary).
//
//   tdg_perfdiff --baseline=BENCH_old.json --candidate=BENCH_new.json
//       [--metric=wall] [--threshold=1.10] [--alpha=0.05]
//       [--confidence=0.95] [--resamples=2000] [--gate_case_set]
//       [--json_out=<path>]
//   tdg_perfdiff --self-check=BENCH.json   # schema/structure validation
//   tdg_perfdiff --events=run.jsonl        # summarize an event stream
//
// Pairs cases by key; a case regresses only when the mean metric ratio
// exceeds the threshold AND Welch's one-sided t-test plus a bootstrap CI on
// the ratio both back the slowdown (single-rep reports fall back to the
// ratio alone). --metric selects what is gated: "wall" (default, wall
// micros) or a perf counter event recorded under --profile — e.g.
// --metric=instructions gates on retired instructions, a near-noise-free
// signal that catches work regressions wall-time variance hides. Exit
// codes: 0 = gate passed, 1 = regression (or, with --gate_case_set, a case
// appeared/vanished), 2 = usage or input error.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tdg_perfdiff --baseline=<report.json> --candidate=<report.json>\n"
      "      [--metric=wall|instructions|cycles|...] [--threshold=1.10]\n"
      "      [--alpha=0.05] [--confidence=0.95] [--resamples=2000]\n"
      "      [--gate_case_set] [--json_out=<path>]\n"
      "  tdg_perfdiff --self-check=<report.json>\n"
      "  tdg_perfdiff --events=<events.jsonl>\n");
  return 2;
}

int SelfCheck(const std::string& path) {
  auto report = tdg::obs::BenchReport::ReadFile(path);
  if (!report.ok()) {
    std::fprintf(stderr, "tdg_perfdiff: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  auto valid = report->Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "tdg_perfdiff: %s: %s\n", path.c_str(),
                 valid.ToString().c_str());
    return 2;
  }
  size_t reps = 0;
  for (const tdg::obs::BenchCase& bench_case : report->cases) {
    reps += bench_case.wall_micros.size();
  }
  std::printf("%s: ok (%s, bench \"%s\", %zu cases, %zu repetitions, git "
              "%s)\n",
              path.c_str(), report->schema.c_str(),
              report->bench_name.c_str(), report->cases.size(), reps,
              report->manifest.git_sha.c_str());
  return 0;
}

int SummarizeEvents(const std::string& path) {
  auto events = tdg::obs::ParseEventLogFile(path);
  if (!events.ok()) {
    std::fprintf(stderr, "tdg_perfdiff: %s\n",
                 events.status().ToString().c_str());
    return 2;
  }
  if (events->empty()) {
    std::printf("%s: empty event stream\n", path.c_str());
    return 0;
  }
  struct PerEvent {
    int64_t count = 0;
    int64_t first_ts = 0;
    int64_t last_ts = 0;
  };
  std::map<std::string, PerEvent> by_name;
  std::map<int, int64_t> by_tid;
  int64_t min_ts = events->front().ts_micros;
  int64_t max_ts = events->front().ts_micros;
  for (const tdg::obs::EventRecord& record : *events) {
    PerEvent& stats = by_name[record.event];
    if (stats.count == 0) stats.first_ts = record.ts_micros;
    ++stats.count;
    stats.last_ts = record.ts_micros;
    ++by_tid[record.tid];
    min_ts = std::min(min_ts, record.ts_micros);
    max_ts = std::max(max_ts, record.ts_micros);
  }
  std::printf("%s: %zu events, %zu kinds, %zu threads, span %.3f ms\n",
              path.c_str(), events->size(), by_name.size(), by_tid.size(),
              static_cast<double>(max_ts - min_ts) / 1000.0);
  for (const auto& [name, stats] : by_name) {
    std::printf("  %-32s x%-8lld [%.3f ms .. %.3f ms]\n", name.c_str(),
                static_cast<long long>(stats.count),
                static_cast<double>(stats.first_ts - min_ts) / 1000.0,
                static_cast<double>(stats.last_ts - min_ts) / 1000.0);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  auto parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "tdg_perfdiff: %s\n", parsed.ToString().c_str());
    return Usage();
  }

  std::string self_check = flags.GetString("self-check", "");
  if (self_check.empty()) self_check = flags.GetString("self_check", "");
  if (!self_check.empty()) return SelfCheck(self_check);

  const std::string events = flags.GetString("events", "");
  if (!events.empty()) return SummarizeEvents(events);

  const std::string baseline_path = flags.GetString("baseline", "");
  const std::string candidate_path = flags.GetString("candidate", "");
  if (baseline_path.empty() || candidate_path.empty()) return Usage();

  auto baseline = tdg::obs::BenchReport::ReadFile(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "tdg_perfdiff: baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto candidate = tdg::obs::BenchReport::ReadFile(candidate_path);
  if (!candidate.ok()) {
    std::fprintf(stderr, "tdg_perfdiff: candidate: %s\n",
                 candidate.status().ToString().c_str());
    return 2;
  }

  tdg::obs::PerfGateOptions options;
  options.metric = flags.GetString("metric", "wall");
  options.threshold_ratio = flags.GetDouble("threshold", 1.10);
  options.alpha = flags.GetDouble("alpha", 0.05);
  options.confidence = flags.GetDouble("confidence", 0.95);
  options.bootstrap_resamples =
      static_cast<int>(flags.GetInt("resamples", 2000));
  options.gate_case_set = flags.GetBool("gate_case_set", false);

  auto diff = tdg::obs::DiffBenchReports(baseline.value(), candidate.value(),
                                         options);
  if (!diff.ok()) {
    std::fprintf(stderr, "tdg_perfdiff: %s\n",
                 diff.status().ToString().c_str());
    return 2;
  }

  std::printf("baseline:  %s (%s, git %s)\n", baseline_path.c_str(),
              baseline->bench_name.c_str(),
              baseline->manifest.git_sha.c_str());
  std::printf("candidate: %s (%s, git %s)\n", candidate_path.c_str(),
              candidate->bench_name.c_str(),
              candidate->manifest.git_sha.c_str());
  std::printf("%s", diff->ToTable().c_str());
  std::printf(
      "%d regression(s), %d improvement(s), %d unchanged, %d new, %d "
      "missing -> %s\n",
      diff->CountVerdict(tdg::obs::PerfVerdict::kRegression),
      diff->CountVerdict(tdg::obs::PerfVerdict::kImprovement),
      diff->CountVerdict(tdg::obs::PerfVerdict::kUnchanged),
      diff->CountVerdict(tdg::obs::PerfVerdict::kNewCase),
      diff->CountVerdict(tdg::obs::PerfVerdict::kMissingCase),
      diff->Failed() ? "FAIL" : "PASS");

  const std::string json_out = flags.GetString("json_out", "");
  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "tdg_perfdiff: cannot open %s\n",
                   json_out.c_str());
      return 2;
    }
    out << diff->ToJson().SerializePretty() << "\n";
    std::printf("wrote %s\n", json_out.c_str());
  }
  return diff->Failed() ? 1 : 0;
}
