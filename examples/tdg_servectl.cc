// tdg_servectl — scripting client and offline replayer for tdg_serve.
//
//   tdg_servectl run --port=P --schedule=S.json [--from=I] [--to=J]
//       Drives a running server through a schedule file: enrolls the
//       cohort (only when --from=0) and then replays ops[I, J) as HTTP
//       requests. Lets the CI e2e split one schedule around a `kill -9`.
//
//   tdg_servectl dump --port=P --id=ID
//       Fetches every advanced round of a cohort and prints each as one
//       compact JSON line — the canonical CohortRoundToJson form.
//
//   tdg_servectl stats --port=P
//       Fetches /statusz from a running server and prints the rolling
//       windowed latency/QPS table (10s/1m/5m per endpoint, latencies in
//       milliseconds) plus the headline serving counters.
//
//   tdg_servectl offline --schedule=S.json --via=cohort|process [--to=J]
//       Replays the same schedule without a server and prints the same
//       JSON lines. --via=cohort drives a local serve::Cohort (any
//       schedule); --via=process drives the batch core::RunProcess (only
//       valid for churn-free star/clique schedules whose size divides
//       evenly — the regime where the two are bitwise-identical). Diffing
//       `dump` against `offline` is the serving plane's end-to-end
//       correctness check: groupings served across enroll → churn →
//       kill -9 → restart must be byte-identical to an uninterrupted
//       offline run.
//
// Schedule file:
//   {"id": "...", "config": {...CohortConfig...},
//    "participants": [{"key": "...", "skill": s}, ...],
//    "ops": [{"op": "advance"} | {"op": "join", "key": "...", "skill": s}
//            | {"op": "leave", "key": "..."}, ...]}
//
// Exit codes: 0 = ok, 1 = server/application error, 2 = usage error.

#include <cstdio>
#include <string>
#include <vector>

#include "core/dygroups.h"
#include "core/process.h"
#include "serve/cohort.h"
#include "util/file_util.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/net.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using tdg::serve::Cohort;
using tdg::serve::CohortConfig;
using tdg::serve::CohortParticipant;
using tdg::serve::CohortRoundToJson;
using tdg::util::JsonValue;
using tdg::util::Status;
using tdg::util::StatusOr;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tdg_servectl run --port=P --schedule=S.json [--from=I] [--to=J]\n"
      "  tdg_servectl dump --port=P --id=ID\n"
      "  tdg_servectl stats --port=P\n"
      "  tdg_servectl offline --schedule=S.json --via=cohort|process "
      "[--to=J]\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "tdg_servectl: %s\n", status.ToString().c_str());
  return 1;
}

struct Schedule {
  std::string id;
  CohortConfig config;
  std::vector<CohortParticipant> participants;
  std::vector<JsonValue> ops;
};

StatusOr<Schedule> LoadSchedule(const std::string& path) {
  TDG_ASSIGN_OR_RETURN(std::string text, tdg::util::ReadFileToString(path));
  TDG_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(text));
  Schedule schedule;
  TDG_ASSIGN_OR_RETURN(JsonValue id, json.GetField("id"));
  if (!id.is_string()) {
    return Status::InvalidArgument("schedule 'id' must be a string");
  }
  schedule.id = id.AsString();
  TDG_ASSIGN_OR_RETURN(JsonValue config, json.GetField("config"));
  TDG_ASSIGN_OR_RETURN(schedule.config, CohortConfig::FromJson(config));
  TDG_ASSIGN_OR_RETURN(JsonValue participants,
                       json.GetField("participants"));
  if (!participants.is_array()) {
    return Status::InvalidArgument("schedule 'participants' must be an array");
  }
  for (const JsonValue& entry : participants.AsArray()) {
    TDG_ASSIGN_OR_RETURN(JsonValue key, entry.GetField("key"));
    TDG_ASSIGN_OR_RETURN(JsonValue skill, entry.GetField("skill"));
    if (!key.is_string() || !skill.is_number()) {
      return Status::InvalidArgument(
          "participants need a string 'key' and a number 'skill'");
    }
    schedule.participants.push_back({key.AsString(), skill.AsNumber()});
  }
  TDG_ASSIGN_OR_RETURN(JsonValue ops, json.GetField("ops"));
  if (!ops.is_array()) {
    return Status::InvalidArgument("schedule 'ops' must be an array");
  }
  schedule.ops = ops.AsArray();
  return schedule;
}

/// Op fields, validated once so `run` and `offline` agree on the grammar.
struct Op {
  std::string op;  // "advance" | "join" | "leave"
  std::string key;
  double skill = 0;
};

StatusOr<Op> ParseOp(const JsonValue& json) {
  Op op;
  TDG_ASSIGN_OR_RETURN(JsonValue name, json.GetField("op"));
  if (!name.is_string()) {
    return Status::InvalidArgument("op entries need a string 'op'");
  }
  op.op = name.AsString();
  if (op.op == "advance") return op;
  TDG_ASSIGN_OR_RETURN(JsonValue key, json.GetField("key"));
  if (!key.is_string()) {
    return Status::InvalidArgument("join/leave ops need a string 'key'");
  }
  op.key = key.AsString();
  if (op.op == "leave") return op;
  if (op.op != "join") {
    return Status::InvalidArgument("unknown op '" + op.op + "'");
  }
  TDG_ASSIGN_OR_RETURN(JsonValue skill, json.GetField("skill"));
  if (!skill.is_number()) {
    return Status::InvalidArgument("join ops need a number 'skill'");
  }
  op.skill = skill.AsNumber();
  return op;
}

/// POSTs and fails on anything but a 2xx.
Status Post(int port, const std::string& path, const JsonValue& body) {
  TDG_ASSIGN_OR_RETURN(
      std::string response,
      tdg::util::net::HttpDo(port, "POST", path, body.Serialize() + "\n"));
  TDG_ASSIGN_OR_RETURN(int code, tdg::util::net::HttpStatusCode(response));
  if (code / 100 != 2) {
    auto body_text = tdg::util::net::HttpBody(response);
    return Status::Internal(tdg::util::StrFormat(
        "POST %s -> %d: %s", path.c_str(), code,
        body_text.ok() ? body_text->c_str() : "?"));
  }
  return Status::OK();
}

StatusOr<JsonValue> GetJson(int port, const std::string& path) {
  TDG_ASSIGN_OR_RETURN(std::string response,
                       tdg::util::net::HttpGet(port, path));
  TDG_ASSIGN_OR_RETURN(int code, tdg::util::net::HttpStatusCode(response));
  TDG_ASSIGN_OR_RETURN(std::string body, tdg::util::net::HttpBody(response));
  if (code / 100 != 2) {
    return Status::Internal(tdg::util::StrFormat(
        "GET %s -> %d: %s", path.c_str(), code, body.c_str()));
  }
  return JsonValue::Parse(body);
}

int Run(const tdg::util::FlagParser& flags) {
  const int port = static_cast<int>(flags.GetInt("port", 0));
  const std::string schedule_path = flags.GetString("schedule", "");
  if (port <= 0 || schedule_path.empty()) return Usage();
  auto schedule = LoadSchedule(schedule_path);
  if (!schedule.ok()) return Fail(schedule.status());
  const long long from = flags.GetInt("from", 0);
  const long long to = flags.GetInt(
      "to", static_cast<long long>(schedule->ops.size()));
  if (from < 0 || to > static_cast<long long>(schedule->ops.size()) ||
      from > to) {
    return Fail(Status::InvalidArgument("bad --from/--to window"));
  }

  if (from == 0) {
    JsonValue enroll = JsonValue::MakeObject();
    enroll.Set("id", schedule->id);
    enroll.Set("config", schedule->config.ToJson());
    JsonValue participants = JsonValue::MakeArray();
    for (const CohortParticipant& participant : schedule->participants) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("key", participant.key);
      entry.Set("skill", participant.skill);
      participants.Append(std::move(entry));
    }
    enroll.Set("participants", std::move(participants));
    Status enrolled = Post(port, "/cohorts", enroll);
    if (!enrolled.ok()) return Fail(enrolled);
  }

  const std::string base = "/cohorts/" + schedule->id;
  for (long long i = from; i < to; ++i) {
    auto op = ParseOp(schedule->ops[static_cast<size_t>(i)]);
    if (!op.ok()) return Fail(op.status());
    JsonValue body = JsonValue::MakeObject();
    Status applied = Status::OK();
    if (op->op == "advance") {
      applied = Post(port, base + "/advance", body);
    } else if (op->op == "join") {
      body.Set("key", op->key);
      body.Set("skill", op->skill);
      applied = Post(port, base + "/join", body);
    } else {
      body.Set("key", op->key);
      applied = Post(port, base + "/leave", body);
    }
    if (!applied.ok()) return Fail(applied);
  }
  std::fprintf(stderr, "tdg_servectl: applied ops [%lld, %lld) of %s\n",
               from, to, schedule->id.c_str());
  return 0;
}

int Dump(const tdg::util::FlagParser& flags) {
  const int port = static_cast<int>(flags.GetInt("port", 0));
  const std::string id = flags.GetString("id", "");
  if (port <= 0 || id.empty()) return Usage();
  auto summary = GetJson(port, "/cohorts/" + id);
  if (!summary.ok()) return Fail(summary.status());
  auto rounds = summary->GetField("rounds");
  if (!rounds.ok() || !rounds->is_number()) {
    return Fail(Status::Internal("summary has no 'rounds'"));
  }
  const int total = static_cast<int>(rounds->AsNumber());
  for (int t = 0; t < total; ++t) {
    auto round = GetJson(
        port, tdg::util::StrFormat("/cohorts/%s/rounds/%d", id.c_str(), t));
    if (!round.ok()) return Fail(round.status());
    std::printf("%s\n", round->Serialize().c_str());
  }
  return 0;
}

int Stats(const tdg::util::FlagParser& flags) {
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0) return Usage();
  auto statusz = GetJson(port, "/statusz");
  if (!statusz.ok()) return Fail(statusz.status());

  auto headline = [&](const char* field) -> std::string {
    auto value = statusz->GetField(field);
    if (!value.ok()) return "?";
    return value->is_number()
               ? tdg::util::FormatDouble(value->AsNumber(), 2)
               : value->Serialize();
  };
  std::printf("cohorts=%s participants=%s requests_served=%s "
              "uptime_seconds=%s\n",
              headline("cohorts").c_str(),
              headline("resident_participants").c_str(),
              headline("requests_served").c_str(),
              headline("uptime_seconds").c_str());

  auto windows = statusz->GetField("windows");
  if (!windows.ok() || !windows->is_object()) {
    return Fail(Status::Internal(
        "/statusz has no 'windows' (server predates windowed telemetry?)"));
  }
  tdg::util::TablePrinter table({"endpoint", "window", "qps", "count",
                                 "error_rate", "p50_ms", "p95_ms",
                                 "p99_ms"});
  auto number = [](const JsonValue& entry, const char* field) {
    auto value = entry.GetField(field);
    return value.ok() && value->is_number() ? value->AsNumber() : 0.0;
  };
  for (const auto& [endpoint, per_window] : windows->AsObject()) {
    if (!per_window.is_object()) continue;
    for (const auto& [label, entry] : per_window.AsObject()) {
      if (!entry.is_object()) continue;
      // /statusz latencies are seconds; print milliseconds.
      table.AddRow(
          {endpoint, label, tdg::util::FormatDouble(number(entry, "qps"), 2),
           tdg::util::FormatDouble(number(entry, "count"), 0),
           tdg::util::FormatDouble(number(entry, "error_rate"), 3),
           tdg::util::FormatDouble(number(entry, "p50") * 1e3, 3),
           tdg::util::FormatDouble(number(entry, "p95") * 1e3, 3),
           tdg::util::FormatDouble(number(entry, "p99") * 1e3, 3)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}

int OfflineViaCohort(const Schedule& schedule, long long to) {
  auto cohort =
      Cohort::Create(schedule.id, schedule.config, schedule.participants);
  if (!cohort.ok()) return Fail(cohort.status());
  for (long long i = 0; i < to; ++i) {
    auto op = ParseOp(schedule.ops[static_cast<size_t>(i)]);
    if (!op.ok()) return Fail(op.status());
    Status applied = Status::OK();
    if (op->op == "advance") {
      applied = cohort->Advance().status();
    } else if (op->op == "join") {
      applied = cohort->Join(op->key, op->skill);
    } else {
      applied = cohort->Leave(op->key);
    }
    if (!applied.ok()) return Fail(applied);
  }
  for (int t = 0; t < cohort->rounds_advanced(); ++t) {
    std::printf("%s\n",
                CohortRoundToJson(cohort->rounds()[static_cast<size_t>(t)], t)
                    .Serialize()
                    .c_str());
  }
  return 0;
}

int OfflineViaProcess(const Schedule& schedule, long long to) {
  // The batch driver runs a fixed population for a fixed α, so it only
  // matches schedules with no churn, an evenly dividing size, and a
  // deterministic DyGroups policy.
  const int n = static_cast<int>(schedule.participants.size());
  if (schedule.config.policy == tdg::serve::CohortPolicy::kRandom) {
    return Fail(Status::InvalidArgument(
        "--via=process cannot replay the random policy"));
  }
  if (n < schedule.config.group_size ||
      n % schedule.config.group_size != 0) {
    return Fail(Status::InvalidArgument(
        "--via=process needs n divisible by group_size"));
  }
  int num_rounds = 0;
  for (long long i = 0; i < to; ++i) {
    auto op = ParseOp(schedule.ops[static_cast<size_t>(i)]);
    if (!op.ok()) return Fail(op.status());
    if (op->op != "advance") {
      return Fail(Status::InvalidArgument(
          "--via=process cannot replay join/leave churn"));
    }
    ++num_rounds;
  }

  tdg::SkillVector skills;
  std::vector<std::string> keys;
  for (const CohortParticipant& participant : schedule.participants) {
    skills.push_back(participant.skill);
    keys.push_back(participant.key);
  }
  auto gain = tdg::LinearGain::Create(schedule.config.learning_rate);
  if (!gain.ok()) return Fail(gain.status());
  tdg::ProcessConfig config;
  config.num_groups = n / schedule.config.group_size;
  config.num_rounds = num_rounds;
  config.mode = schedule.config.mode;
  config.record_history = true;
  auto policy = tdg::MakeDyGroupsPolicy(
      schedule.config.policy == tdg::serve::CohortPolicy::kStar
          ? tdg::InteractionMode::kStar
          : tdg::InteractionMode::kClique);
  auto result = tdg::RunProcess(skills, config, *gain, *policy);
  if (!result.ok()) return Fail(result.status());

  for (int t = 0; t < num_rounds; ++t) {
    const tdg::RoundRecord& record =
        result->history[static_cast<size_t>(t)];
    tdg::serve::CohortRound round;
    round.keys = keys;
    round.assignment.assign(static_cast<size_t>(n), 0);
    for (size_t g = 0; g < record.grouping.groups.size(); ++g) {
      for (int id : record.grouping.groups[g]) {
        round.assignment[static_cast<size_t>(id)] = static_cast<int>(g);
      }
    }
    round.num_groups = record.grouping.num_groups();
    round.gain = record.gain;
    std::printf("%s\n", CohortRoundToJson(round, t).Serialize().c_str());
  }
  return 0;
}

int Offline(const tdg::util::FlagParser& flags) {
  const std::string schedule_path = flags.GetString("schedule", "");
  const std::string via = flags.GetString("via", "cohort");
  if (schedule_path.empty()) return Usage();
  auto schedule = LoadSchedule(schedule_path);
  if (!schedule.ok()) return Fail(schedule.status());
  const long long to = flags.GetInt(
      "to", static_cast<long long>(schedule->ops.size()));
  if (to < 0 || to > static_cast<long long>(schedule->ops.size())) {
    return Fail(Status::InvalidArgument("bad --to"));
  }
  if (via == "cohort") return OfflineViaCohort(*schedule, to);
  if (via == "process") return OfflineViaProcess(*schedule, to);
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  if (!flags.Parse(argc, argv).ok() || flags.positional().empty()) {
    return Usage();
  }
  const std::string& command = flags.positional()[0];
  if (command == "run") return Run(flags);
  if (command == "dump") return Dump(flags);
  if (command == "stats") return Stats(flags);
  if (command == "offline") return Offline(flags);
  return Usage();
}
