// Fairness audit (the paper's §V-B5 experiment, generalized): track how the
// inequality of the skill distribution evolves round by round under any
// registered grouping policy, reporting the coefficient of variation and
// the Gini index after each round.
//
//   build/examples/example_fairness_audit [--policy=DyGroups-Star]
//       [--n=1000] [--k=5] [--alpha=16] [--r=0.1] [--mode=star]
//       [--distribution=log-normal] [--seed=42]

#include <cstdio>

#include "baselines/registry.h"
#include "core/process.h"
#include "random/distributions.h"
#include "stats/inequality.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  TDG_CHECK(flags.Parse(argc, argv).ok());
  std::string policy_name = flags.GetString("policy", "DyGroups-Star");
  int n = static_cast<int>(flags.GetInt("n", 1000));
  int k = static_cast<int>(flags.GetInt("k", 5));
  int alpha = static_cast<int>(flags.GetInt("alpha", 16));
  double r = flags.GetDouble("r", 0.1);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  auto mode = tdg::ParseInteractionMode(flags.GetString("mode", "star"));
  if (!mode.ok()) {
    std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
    return 1;
  }
  auto distribution = tdg::random::ParseSkillDistribution(
      flags.GetString("distribution", "log-normal"));
  if (!distribution.ok()) {
    std::fprintf(stderr, "%s\n", distribution.status().ToString().c_str());
    return 1;
  }
  auto policy = tdg::baselines::MakePolicy(policy_name, seed);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\navailable policies:\n",
                 policy.status().ToString().c_str());
    for (const auto& name : tdg::baselines::AllPolicyNames()) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 1;
  }

  tdg::random::Rng rng(seed);
  tdg::SkillVector skills =
      tdg::random::GenerateSkills(rng, distribution.value(), n);
  for (double& s : skills) s += 1e-9;

  tdg::LinearGain gain(r);
  tdg::ProcessConfig config;
  config.num_groups = k;
  config.num_rounds = alpha;
  config.mode = mode.value();
  auto result = tdg::RunProcess(skills, config, gain, **policy);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Fairness audit: %s, %s mode, n=%d, k=%d, r=%.2f\n\n",
              policy_name.c_str(),
              std::string(tdg::InteractionModeName(mode.value())).c_str(),
              n, k, r);
  tdg::util::TablePrinter table({"round", "LG(G_t)", "CV", "Gini"});
  table.AddNumericRow({0.0, 0.0, tdg::stats::CoefficientOfVariation(skills),
                       tdg::stats::GiniIndex(skills)},
                      4);
  for (size_t t = 0; t < result->history.size(); ++t) {
    const auto& record = result->history[t];
    table.AddNumericRow(
        {static_cast<double>(t + 1), record.gain,
         tdg::stats::CoefficientOfVariation(record.skills_after),
         tdg::stats::GiniIndex(record.skills_after)},
        4);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nInequality falls as skills converge toward the invariant "
              "maximum; compare\npolicies by re-running with "
              "--policy=Random-Assignment (the paper's Fig 11).\n");
  return 0;
}
