// Study-buddy matching (the paper's §VII extensions in one scenario): a
// tutoring center runs weekly sessions with rooms of *different capacities*
// and cares about both learning and social cohesion. Demonstrates:
//   - variable group sizes (rooms of capacity 4 / 6 / 10),
//   - the bi-criteria gain/affinity policy with an evolving friendship
//     matrix (friendships strengthen among roommates),
//   - round diagnostics (teacher coverage, per-room stats).
//
//   build/examples/example_study_buddies [--weeks=6] [--lambda=0.5]
//       [--seed=11]

#include <cstdio>

#include "core/affinity.h"
#include "core/metrics.h"
#include "core/variable_groups.h"
#include "random/distributions.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  TDG_CHECK(flags.Parse(argc, argv).ok());
  int weeks = static_cast<int>(flags.GetInt("weeks", 6));
  double lambda = flags.GetDouble("lambda", 0.5);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 11));

  // 20 students, three rooms: 4 + 6 + 10 seats.
  constexpr int kStudents = 20;
  const std::vector<int> kRooms = {4, 6, 10};
  tdg::random::Rng rng(seed);
  tdg::SkillVector skills;
  for (int i = 0; i < kStudents; ++i) {
    skills.push_back(30.0 + 60.0 * rng.NextDouble());
  }
  tdg::LinearGain gain(0.5);

  std::printf("Part 1 — capacity-constrained rooms (variable group "
              "sizes)\n");
  tdg::SizedProcessConfig sized;
  sized.group_sizes = kRooms;
  sized.num_rounds = weeks;
  sized.mode = tdg::InteractionMode::kStar;
  auto sized_result = tdg::RunSizedProcess(
      skills, sized, gain,
      [](const tdg::SkillVector& s, const std::vector<int>& sizes) {
        return tdg::DyGroupsStarLocalSized(s, sizes);
      });
  TDG_CHECK(sized_result.ok()) << sized_result.status();

  tdg::util::TablePrinter weekly({"week", "session gain", "teacher coverage",
                                  "mean room spread"});
  const tdg::SkillVector* before = &sized_result->initial_skills;
  for (size_t t = 0; t < sized_result->history.size(); ++t) {
    const auto& record = sized_result->history[t];
    auto metrics = tdg::ComputeRoundMetrics(record.grouping, *before,
                                            record.skills_after);
    TDG_CHECK(metrics.ok());
    weekly.AddNumericRow({static_cast<double>(t + 1), record.gain,
                          metrics->teacher_coverage,
                          metrics->mean_within_group_spread},
                         3);
    before = &record.skills_after;
  }
  std::printf("%s", weekly.ToString().c_str());
  std::printf("total learning gain over the term: %.1f\n\n",
              sized_result->total_gain);

  std::printf("Part 2 — friendship-aware matching (bi-criteria, lambda = "
              "%.2f)\n",
              lambda);
  // Equal-size version of the same class so the bi-criteria policy applies
  // (4 groups of 5).
  tdg::AffinityDyGroupsPolicy buddies(
      tdg::InteractionMode::kStar, gain,
      tdg::AffinityMatrix(kStudents), seed,
      tdg::BiCriteriaOptions{.lambda = lambda,
                             .refinement_iterations = 800});
  tdg::SkillVector current = skills;
  double total_gain = 0.0;
  for (int week = 1; week <= weeks; ++week) {
    auto grouping = buddies.FormGroups(current, 4);
    TDG_CHECK(grouping.ok()) << grouping.status();
    auto week_gain = tdg::ApplyRound(tdg::InteractionMode::kStar,
                                     grouping.value(), gain, current);
    TDG_CHECK(week_gain.ok());
    total_gain += week_gain.value();
    std::printf("  week %d: gain %.1f, within-room friendship %.2f, class "
                "mean friendship %.3f\n",
                week, week_gain.value(), buddies.last_affinity(),
                buddies.affinity().MeanAffinity());
  }
  std::printf("total gain %.1f — friendships deepen each week among "
              "roommates while\nthe policy keeps the strongest teachers "
              "spread across rooms.\n",
              total_gain);
  return 0;
}
