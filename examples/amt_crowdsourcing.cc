// Crowdsourcing scenario (the paper's §V-A study): teach a pool of paid
// workers facts about a topic through dynamically re-formed peer groups,
// with noisy quiz-based skill assessment and gain-driven retention —
// a full simulated re-run of the paper's AMT Experiment-1/2 pipeline.
//
//   build/examples/example_amt_crowdsourcing [--experiment=1|2]
//       [--seed=42] [--deployments=1]

#include <cstdio>

#include "sim/amt_experiment.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  tdg::util::FlagParser flags;
  TDG_CHECK(flags.Parse(argc, argv).ok());
  int experiment = static_cast<int>(flags.GetInt("experiment", 1));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  int deployments = static_cast<int>(flags.GetInt("deployments", 1));

  tdg::sim::ExperimentConfig config =
      (experiment == 2) ? tdg::sim::Experiment2Config(seed)
                        : tdg::sim::Experiment1Config(seed);

  std::printf("Simulated AMT Experiment-%d: %d workers, %zu populations, "
              "%d rounds, group size %d\n\n",
              experiment, config.total_workers, config.policy_names.size(),
              config.amt.num_rounds, config.amt.group_size);

  for (int d = 0; d < deployments; ++d) {
    config.seed = seed + static_cast<uint64_t>(d);
    auto result = tdg::sim::RunExperiment(config);
    TDG_CHECK(result.ok()) << result.status();

    std::printf("--- deployment %d ---\n", d + 1);
    tdg::util::TablePrinter table({"population", "pre-test mean",
                                   "total gain", "final retention"});
    for (const auto& population : result->populations) {
      double final_retention =
          population.rounds.empty()
              ? 1.0
              : population.rounds.back().retention_fraction;
      table.AddRow({population.policy_name,
                    tdg::util::FormatDouble(
                        population.pre_qualification_mean, 3),
                    tdg::util::FormatDouble(population.total_observed_gain,
                                            3),
                    tdg::util::FormatDouble(final_retention, 3)});
    }
    std::printf("%s", table.ToString().c_str());

    std::printf("Observation I check — pooled per-worker gain, %.0f%% CI: "
                "[%.4f, %.4f] (positive lower bound = peer learning "
                "works)\n",
                result->pooled_gain_ci.confidence * 100,
                result->pooled_gain_ci.lower, result->pooled_gain_ci.upper);
    for (size_t p = 1; p < result->populations.size(); ++p) {
      std::printf("Observation II check — DyGroups vs %s: mean gain diff "
                  "%+0.4f (one-sided p = %.3f)\n",
                  result->populations[p].policy_name.c_str(),
                  result->first_vs_other[p].mean_difference,
                  result->first_vs_other[p].p_value_one_sided_greater);
    }
    std::printf("\n");
  }
  std::printf("Increase --deployments to average out quiz noise; the bench "
              "binaries bench_fig01..04 do this automatically.\n");
  return 0;
}
